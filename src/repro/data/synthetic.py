"""Synthetic crowdsourced WiFi fingerprint generator.

Substitutes for the two datasets used in the paper (Microsoft's Kaggle indoor
location dataset covering 204 buildings in Hangzhou and the authors' own
five-building Hong Kong collection), neither of which is redistributable or
downloadable in this offline environment.  The generator reproduces the data
characteristics the paper relies on:

* records are **variable-length**: each scan only detects a small fraction of
  the MACs present on a floor (paper Fig. 1a) because of AP coverage limits
  and device scanning capability;
* pairs of records from the same floor often have **low MAC overlap**
  (Fig. 1b), so naive matrix representations suffer from the missing-value
  problem;
* floors are statistically separable because inter-floor attenuation is
  large (the physical premise of RF-based floor identification);
* crowdsourced heterogeneity: per-device RSS bias, per-device sensitivity,
  per-record scan-size limits, and optional AP churn (installation/removal)
  over the collection period.

Every generated record carries its ground-truth floor; the experiment
harness (not the generator) decides which few records expose their label to
GRAFICS and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.types import FingerprintDataset, SignalRecord
from .propagation import PropagationModel, PropagationParameters

__all__ = [
    "DevicePopulation",
    "AccessPoint",
    "BuildingSpec",
    "SyntheticBuilding",
    "generate_building",
]


@dataclass(frozen=True)
class DevicePopulation:
    """Statistical description of the crowdsourcing device population.

    Attributes
    ----------
    num_devices:
        Number of distinct contributing devices.
    rss_bias_sigma_db:
        Standard deviation of the per-device constant RSS bias.
    sensitivity_offset_range_db:
        Per-device detection-threshold offset is drawn uniformly from
        ``[0, sensitivity_offset_range_db]`` (cheap devices miss weak APs).
    max_macs_low, max_macs_high:
        Per-device cap on the number of MACs reported in a single scan is
        drawn uniformly from this integer range (models chipset scan limits).
    detection_probability_low, detection_probability_high:
        Per-device probability that an *audible* AP actually appears in a
        given scan, drawn uniformly from this range.  A single WiFi scan only
        dwells briefly on each channel, so it captures a random subset of the
        beacons it could hear; this is the main source of the low pairwise
        MAC overlap the paper reports (Fig. 1b) and of the missing-value
        problem that hurts matrix representations.
    """

    num_devices: int = 50
    rss_bias_sigma_db: float = 3.0
    sensitivity_offset_range_db: float = 8.0
    max_macs_low: int = 15
    max_macs_high: int = 45
    detection_probability_low: float = 0.30
    detection_probability_high: float = 0.65

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        if not 1 <= self.max_macs_low <= self.max_macs_high:
            raise ValueError("require 1 <= max_macs_low <= max_macs_high")
        if not (0.0 < self.detection_probability_low
                <= self.detection_probability_high <= 1.0):
            raise ValueError("require 0 < detection_probability_low <= "
                             "detection_probability_high <= 1")


@dataclass(frozen=True)
class AccessPoint:
    """One deployed access point (a single MAC address)."""

    mac: str
    floor: int
    x: float
    y: float
    z: float
    installed_at: float = 0.0
    removed_at: float | None = None

    def is_active(self, timestamp: float) -> bool:
        """Whether the AP is deployed at the given collection time."""
        if timestamp < self.installed_at:
            return False
        return self.removed_at is None or timestamp < self.removed_at


@dataclass(frozen=True)
class BuildingSpec:
    """Geometry and workload description of one synthetic building.

    Attributes
    ----------
    building_id:
        Identifier used for record ids and dataset metadata.
    num_floors:
        Number of storeys.
    width_m, depth_m:
        Horizontal footprint of every floor, in metres.
    floor_height_m:
        Vertical distance between consecutive floors.
    aps_per_floor:
        Number of access points deployed per floor.
    records_per_floor:
        Number of crowdsourced records generated per floor.
    ap_churn_fraction:
        Fraction of APs that are either installed late or removed early in the
        collection window (models environment dynamics).
    propagation:
        Propagation-model parameters.
    devices:
        Device-population parameters.
    """

    building_id: str = "building-0"
    num_floors: int = 3
    width_m: float = 60.0
    depth_m: float = 40.0
    floor_height_m: float = 4.0
    aps_per_floor: int = 40
    records_per_floor: int = 200
    ap_churn_fraction: float = 0.0
    propagation: PropagationParameters = field(default_factory=PropagationParameters)
    devices: DevicePopulation = field(default_factory=DevicePopulation)

    def __post_init__(self) -> None:
        if self.num_floors < 1:
            raise ValueError("num_floors must be at least 1")
        if self.aps_per_floor < 1:
            raise ValueError("aps_per_floor must be at least 1")
        if self.records_per_floor < 1:
            raise ValueError("records_per_floor must be at least 1")
        if not 0.0 <= self.ap_churn_fraction <= 1.0:
            raise ValueError("ap_churn_fraction must be in [0, 1]")

    @property
    def area_m2(self) -> float:
        """Per-floor area of the building."""
        return self.width_m * self.depth_m


class SyntheticBuilding:
    """A fully instantiated synthetic building: AP layout + device population."""

    def __init__(self, spec: BuildingSpec, seed: int | None = 0) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self.propagation = PropagationModel(spec.propagation)
        self.access_points = self._deploy_access_points()
        (self._device_bias, self._device_sensitivity, self._device_scan_cap,
         self._device_detection) = self._build_device_population()

    # ------------------------------------------------------------- deployment
    def _deploy_access_points(self) -> list[AccessPoint]:
        spec = self.spec
        rng = self._rng
        aps: list[AccessPoint] = []
        churn_count = int(round(spec.ap_churn_fraction * spec.aps_per_floor))
        for floor in range(spec.num_floors):
            for k in range(spec.aps_per_floor):
                mac = f"{spec.building_id}:ap:{floor:02d}:{k:03d}"
                installed_at = 0.0
                removed_at: float | None = None
                if k < churn_count:
                    # Half of the churned APs appear mid-window, half disappear.
                    if k % 2 == 0:
                        installed_at = float(rng.uniform(0.3, 0.7))
                    else:
                        removed_at = float(rng.uniform(0.3, 0.7))
                aps.append(AccessPoint(
                    mac=mac,
                    floor=floor,
                    x=float(rng.uniform(0.0, spec.width_m)),
                    y=float(rng.uniform(0.0, spec.depth_m)),
                    z=floor * spec.floor_height_m + 2.5,
                    installed_at=installed_at,
                    removed_at=removed_at,
                ))
        return aps

    def _build_device_population(self):
        devices = self.spec.devices
        rng = self._rng
        bias = rng.normal(0.0, devices.rss_bias_sigma_db, size=devices.num_devices)
        sensitivity = rng.uniform(0.0, devices.sensitivity_offset_range_db,
                                  size=devices.num_devices)
        scan_cap = rng.integers(devices.max_macs_low, devices.max_macs_high + 1,
                                size=devices.num_devices)
        detection = rng.uniform(devices.detection_probability_low,
                                devices.detection_probability_high,
                                size=devices.num_devices)
        return bias, sensitivity, scan_cap, detection

    # -------------------------------------------------------------- generation
    def generate(self) -> FingerprintDataset:
        """Generate the full crowdsourced dataset for this building."""
        spec = self.spec
        records: list[SignalRecord] = []
        for floor in range(spec.num_floors):
            records.extend(self._generate_floor(floor))
        dataset = FingerprintDataset(
            records=records,
            building_id=spec.building_id,
            floor_names={f: f"F{f + 1}" for f in range(spec.num_floors)},
            metadata={
                "synthetic": True,
                "num_floors": spec.num_floors,
                "area_m2": spec.area_m2,
                "aps_per_floor": spec.aps_per_floor,
                "records_per_floor": spec.records_per_floor,
            },
        )
        return dataset

    def _generate_floor(self, floor: int) -> list[SignalRecord]:
        spec = self.spec
        rng = self._rng
        count = spec.records_per_floor

        positions = np.column_stack([
            rng.uniform(0.0, spec.width_m, size=count),
            rng.uniform(0.0, spec.depth_m, size=count),
            np.full(count, floor * spec.floor_height_m + 1.2),
        ])
        timestamps = rng.uniform(0.0, 1.0, size=count)
        device_ids = rng.integers(0, spec.devices.num_devices, size=count)

        ap_positions = np.array([[ap.x, ap.y, ap.z] for ap in self.access_points])
        ap_floors = np.array([ap.floor for ap in self.access_points])

        records = []
        for i in range(count):
            record_id = f"{spec.building_id}:f{floor}:r{i:05d}"
            device = int(device_ids[i])
            distances = np.linalg.norm(ap_positions - positions[i], axis=1)
            horizontal = np.linalg.norm(ap_positions[:, :2] - positions[i, :2],
                                        axis=1)
            floor_diff = np.abs(ap_floors - floor)
            rss = self.propagation.sample_rss(
                distances, floor_diff, rng,
                device_bias_db=float(self._device_bias[device]),
                horizontal_distance_m=horizontal)
            detectable = self.propagation.is_detectable(
                rss, sensitivity_offset_db=float(self._device_sensitivity[device]))
            active = np.array([ap.is_active(timestamps[i])
                               for ap in self.access_points])
            captured = rng.random(len(self.access_points)) < float(
                self._device_detection[device])
            visible = np.flatnonzero(detectable & active & captured)
            if visible.size == 0:
                # Guarantee a non-empty record: keep the single strongest AP on
                # this floor (a real scan always sees something indoors).
                same_floor = np.flatnonzero((ap_floors == floor) & active)
                if same_floor.size == 0:
                    same_floor = np.flatnonzero(active)
                visible = same_floor[np.argsort(rss[same_floor])[-1:]]
            cap = int(self._device_scan_cap[device])
            if visible.size > cap:
                strongest = np.argsort(rss[visible])[::-1][:cap]
                visible = visible[strongest]
            readings = {self.access_points[j].mac: float(np.round(rss[j], 1))
                        for j in visible}
            records.append(SignalRecord(
                record_id=record_id,
                rss=readings,
                floor=floor,
                device=f"device-{device:03d}",
                timestamp=float(timestamps[i]),
            ))
        return records


def generate_building(spec: BuildingSpec | None = None,
                      seed: int | None = 0) -> FingerprintDataset:
    """Convenience helper: instantiate a building from a spec and generate data."""
    building = SyntheticBuilding(spec or BuildingSpec(), seed=seed)
    return building.generate()
