"""Indoor RF propagation model used by the synthetic data generator.

The paper evaluates on real crowdsourced datasets (Microsoft's Kaggle indoor
location dataset and a Hong Kong collection) that are not redistributable
here, so the reproduction generates synthetic crowdsourced WiFi RSS data with
the standard *log-distance path loss model with a floor attenuation factor*
(ITU indoor / Seidel-Rappaport multi-floor model):

    RSS(d, Δf) = P_tx - PL(d0) - 10 n log10(d / d0) - FAF · |Δf| + X_σ

where ``d`` is the 3-D transmitter–receiver distance, ``Δf`` the number of
floors between them, ``n`` the path-loss exponent, ``FAF`` the per-floor
attenuation in dB and ``X_σ`` log-normal shadowing.  The floor attenuation
factor is what makes floors statistically separable from RSS alone, which is
the physical effect GRAFICS exploits; reproducing it faithfully preserves the
relative behaviour of all evaluated methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PropagationModel", "PropagationParameters"]


@dataclass(frozen=True)
class PropagationParameters:
    """Parameters of the multi-floor log-distance path-loss model.

    Attributes
    ----------
    tx_power_dbm:
        Effective transmit power plus antenna gains (typical WiFi AP ≈ 18 dBm).
    reference_loss_db:
        Path loss at the reference distance of one metre (~40 dB at 2.4 GHz).
    path_loss_exponent:
        Log-distance exponent; 2.5–3.5 indoors with obstructions.
    floor_attenuation_db:
        Attenuation added per concrete floor crossed (12–20 dB typical).
    horizontal_attenuation_db_per_m:
        Extra attenuation per metre of horizontal distance, a standard
        simplification of in-plane obstruction (interior walls, shelving,
        people).  This is what limits an AP's coverage to a neighbourhood of
        the floor and makes same-floor records from distant spots observe
        disjoint MAC sets — the crowdsourcing heterogeneity GRAFICS targets.
    shadowing_sigma_db:
        Standard deviation of the log-normal shadowing term.
    noise_floor_dbm:
        RSS below which a receiver cannot detect the AP at all.
    """

    tx_power_dbm: float = 18.0
    reference_loss_db: float = 40.0
    path_loss_exponent: float = 3.0
    floor_attenuation_db: float = 18.0
    horizontal_attenuation_db_per_m: float = 0.35
    shadowing_sigma_db: float = 4.0
    noise_floor_dbm: float = -95.0

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if self.floor_attenuation_db < 0:
            raise ValueError("floor_attenuation_db must be non-negative")
        if self.horizontal_attenuation_db_per_m < 0:
            raise ValueError("horizontal_attenuation_db_per_m must be non-negative")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")


class PropagationModel:
    """Computes received signal strength between APs and measurement points."""

    def __init__(self, parameters: PropagationParameters | None = None) -> None:
        self.parameters = parameters or PropagationParameters()

    def mean_rss(self, distance_m: np.ndarray, floor_difference: np.ndarray,
                 horizontal_distance_m: np.ndarray | None = None) -> np.ndarray:
        """Deterministic mean RSS (dBm) without shadowing or device effects.

        Parameters
        ----------
        distance_m:
            3-D distances in metres (same shape as ``floor_difference``).
        floor_difference:
            Absolute number of floors between transmitter and receiver.
        horizontal_distance_m:
            In-plane distances used for the per-metre obstruction term;
            defaults to ``distance_m`` when not provided.
        """
        p = self.parameters
        distance_m = np.maximum(np.asarray(distance_m, dtype=np.float64), 1.0)
        floor_difference = np.abs(np.asarray(floor_difference, dtype=np.float64))
        if horizontal_distance_m is None:
            horizontal_distance_m = distance_m
        horizontal_distance_m = np.maximum(
            np.asarray(horizontal_distance_m, dtype=np.float64), 0.0)
        path_loss = (p.reference_loss_db
                     + 10.0 * p.path_loss_exponent * np.log10(distance_m)
                     + p.floor_attenuation_db * floor_difference
                     + p.horizontal_attenuation_db_per_m * horizontal_distance_m)
        return p.tx_power_dbm - path_loss

    def sample_rss(self, distance_m: np.ndarray, floor_difference: np.ndarray,
                   rng: np.random.Generator,
                   device_bias_db: float = 0.0,
                   horizontal_distance_m: np.ndarray | None = None) -> np.ndarray:
        """Mean RSS plus log-normal shadowing and a per-device bias."""
        mean = self.mean_rss(distance_m, floor_difference,
                             horizontal_distance_m=horizontal_distance_m)
        shadowing = rng.normal(0.0, self.parameters.shadowing_sigma_db,
                               size=np.shape(mean))
        return mean + shadowing + device_bias_db

    def is_detectable(self, rss_dbm: np.ndarray,
                      sensitivity_offset_db: float = 0.0) -> np.ndarray:
        """Whether a reading clears the noise floor of the receiving device.

        ``sensitivity_offset_db`` shifts the noise floor per device: cheap
        radios (positive offset) miss weak APs, which reproduces the paper's
        observation that low-end devices scan fewer MACs.
        """
        threshold = self.parameters.noise_floor_dbm + sensitivity_offset_db
        return np.asarray(rss_dbm) >= threshold
