"""Dataset statistics reproduced from the paper's motivating figures.

* Fig. 1(a): CDF of the number of MACs per record on a dense floor.
* Fig. 1(b): CDF of the pairwise MAC-overlap ratio (intersection over union).
* Fig. 9:    per-building summary (floors, area, #MACs, #records).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..core.types import FingerprintDataset, SignalRecord

__all__ = [
    "EmpiricalCDF",
    "record_size_cdf",
    "overlap_ratio_cdf",
    "BuildingSummary",
    "building_summary",
    "summarize_corpus",
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution over scalar observations."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("an empirical CDF needs at least one observation")
        object.__setattr__(self, "values", tuple(sorted(float(v) for v in self.values)))

    def evaluate(self, x: float) -> float:
        """P(X <= x)."""
        data = np.asarray(self.values)
        return float(np.searchsorted(data, x, side="right") / data.size)

    def quantile(self, q: float) -> float:
        """The q-quantile of the observations (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(np.asarray(self.values), q))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def as_curve(self, points: int = 50) -> list[tuple[float, float]]:
        """Sampled (x, CDF(x)) pairs for plotting or reporting."""
        data = np.asarray(self.values)
        xs = np.linspace(data.min(), data.max(), points)
        return [(float(x), self.evaluate(float(x))) for x in xs]


def record_size_cdf(records: Sequence[SignalRecord] | FingerprintDataset) -> EmpiricalCDF:
    """CDF of the number of MACs per record (paper Fig. 1a)."""
    items = records.records if isinstance(records, FingerprintDataset) else records
    if not items:
        raise ValueError("no records to summarise")
    return EmpiricalCDF(tuple(float(len(r)) for r in items))


def overlap_ratio_cdf(records: Sequence[SignalRecord] | FingerprintDataset,
                      max_pairs: int = 100_000,
                      seed: int | None = 0) -> EmpiricalCDF:
    """CDF of the pairwise MAC-overlap ratio (paper Fig. 1b).

    The number of pairs grows quadratically; when it exceeds ``max_pairs`` a
    uniform random sample of pairs is used instead of the full enumeration.
    """
    items = list(records.records if isinstance(records, FingerprintDataset)
                 else records)
    n = len(items)
    if n < 2:
        raise ValueError("need at least two records to compute overlap ratios")
    total_pairs = n * (n - 1) // 2
    ratios: list[float] = []
    if total_pairs <= max_pairs:
        for a, b in combinations(items, 2):
            ratios.append(a.overlap_ratio(b))
    else:
        rng = np.random.default_rng(seed)
        first = rng.integers(0, n, size=max_pairs)
        second = rng.integers(0, n - 1, size=max_pairs)
        second = np.where(second >= first, second + 1, second)
        for i, j in zip(first, second):
            ratios.append(items[int(i)].overlap_ratio(items[int(j)]))
    return EmpiricalCDF(tuple(ratios))


@dataclass(frozen=True)
class BuildingSummary:
    """Per-building aggregate used for the paper's Fig. 9 scatter."""

    building_id: str
    num_floors: int
    num_macs: int
    num_records: int
    area_m2: float | None

    def as_row(self) -> dict[str, object]:
        return {
            "building": self.building_id,
            "floors": self.num_floors,
            "macs": self.num_macs,
            "records": self.num_records,
            "area_m2": self.area_m2,
        }


def building_summary(dataset: FingerprintDataset) -> BuildingSummary:
    """Summarise one building (floors, #MACs, #records, area if known)."""
    area = dataset.metadata.get("area_m2")
    return BuildingSummary(
        building_id=dataset.building_id,
        num_floors=len(dataset.floors) if dataset.floors else 0,
        num_macs=len(dataset.macs),
        num_records=len(dataset),
        area_m2=float(area) if area is not None else None,
    )


def summarize_corpus(datasets: Sequence[FingerprintDataset]) -> list[BuildingSummary]:
    """Summarise a corpus of buildings, sorted by number of floors."""
    summaries = [building_summary(d) for d in datasets]
    return sorted(summaries, key=lambda s: (s.num_floors, s.building_id))
