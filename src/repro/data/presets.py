"""Dataset presets that mirror the paper's two evaluation corpora.

* :func:`microsoft_like_campus` — many buildings of heterogeneous size
  (2–12 floors), standing in for the Microsoft Kaggle dataset (204 buildings
  in Hangzhou).  The default ``num_buildings`` is kept small so tests and
  benchmarks run on a laptop; raise it to approach the paper's scale.
* :func:`hong_kong_like_buildings` — five larger, denser buildings (two
  office towers, a hospital, two malls), standing in for the authors' Hong
  Kong collection.
* :func:`three_story_campus_building` — the three-storey campus building used
  for the embedding visualisation (Fig. 6) and the clustering-progress
  illustration (Fig. 8).
* :func:`dense_mall_floor` — a single dense mall floor used for the record
  statistics of Fig. 1.

All presets are deterministic given their ``seed``.
"""

from __future__ import annotations

import numpy as np

from ..core.types import FingerprintDataset
from .propagation import PropagationParameters
from .synthetic import BuildingSpec, DevicePopulation, generate_building

__all__ = [
    "microsoft_like_campus",
    "hong_kong_like_buildings",
    "three_story_campus_building",
    "dense_mall_floor",
    "small_test_building",
]


def microsoft_like_campus(num_buildings: int = 8, records_per_floor: int = 120,
                          seed: int = 0) -> list[FingerprintDataset]:
    """Generate a heterogeneous fleet of buildings (Microsoft-dataset stand-in).

    Building heights span 2–12 floors and footprints vary widely, mirroring
    the spread shown in the paper's Fig. 9.  Each floor receives about
    ``records_per_floor`` crowdsourced records (the paper reports roughly one
    thousand per floor; the default is scaled down for laptop-scale runs).
    """
    if num_buildings < 1:
        raise ValueError("num_buildings must be at least 1")
    rng = np.random.default_rng(seed)
    datasets = []
    for b in range(num_buildings):
        num_floors = int(rng.integers(2, 13))
        width = float(rng.uniform(30.0, 90.0))
        depth = float(rng.uniform(20.0, 70.0))
        aps_per_floor = int(rng.integers(15, 45))
        spec = BuildingSpec(
            building_id=f"ms-{b:03d}",
            num_floors=num_floors,
            width_m=width,
            depth_m=depth,
            aps_per_floor=aps_per_floor,
            records_per_floor=records_per_floor,
            ap_churn_fraction=float(rng.uniform(0.0, 0.15)),
            propagation=PropagationParameters(
                path_loss_exponent=float(rng.uniform(2.7, 3.3)),
                floor_attenuation_db=float(rng.uniform(16.0, 22.0)),
                horizontal_attenuation_db_per_m=float(rng.uniform(0.25, 0.45)),
                shadowing_sigma_db=float(rng.uniform(3.0, 5.0)),
            ),
            devices=DevicePopulation(num_devices=40),
        )
        datasets.append(generate_building(spec, seed=int(rng.integers(0, 2**31))))
    return datasets


def hong_kong_like_buildings(records_per_floor: int = 150,
                             seed: int = 1) -> list[FingerprintDataset]:
    """Generate five buildings mirroring the Hong Kong dataset's facility mix."""
    rng = np.random.default_rng(seed)
    profiles = [
        ("hk-office-a", 10, 45.0, 35.0, 35),
        ("hk-office-b", 8, 40.0, 30.0, 30),
        ("hk-hospital", 6, 90.0, 60.0, 50),
        ("hk-mall-a", 4, 110.0, 80.0, 60),
        ("hk-mall-b", 5, 100.0, 70.0, 55),
    ]
    datasets = []
    for building_id, floors, width, depth, aps in profiles:
        spec = BuildingSpec(
            building_id=building_id,
            num_floors=floors,
            width_m=width,
            depth_m=depth,
            aps_per_floor=aps,
            records_per_floor=records_per_floor,
            ap_churn_fraction=0.1,
            propagation=PropagationParameters(
                path_loss_exponent=float(rng.uniform(2.8, 3.2)),
                floor_attenuation_db=float(rng.uniform(16.0, 21.0)),
                horizontal_attenuation_db_per_m=float(rng.uniform(0.3, 0.45)),
                shadowing_sigma_db=4.0,
            ),
            devices=DevicePopulation(num_devices=60),
        )
        datasets.append(generate_building(spec, seed=int(rng.integers(0, 2**31))))
    return datasets


def three_story_campus_building(records_per_floor: int = 150,
                                seed: int = 7) -> FingerprintDataset:
    """The three-storey campus building of the paper's Fig. 6 and Fig. 8."""
    spec = BuildingSpec(
        building_id="campus-3f",
        num_floors=3,
        width_m=70.0,
        depth_m=45.0,
        aps_per_floor=35,
        records_per_floor=records_per_floor,
        devices=DevicePopulation(num_devices=30),
    )
    return generate_building(spec, seed=seed)


def dense_mall_floor(num_records: int = 2000, num_aps: int = 200,
                     seed: int = 3) -> FingerprintDataset:
    """A single dense mall floor for the record statistics of Fig. 1.

    The paper's floor has 8,274 records over 805 MACs; the default here is a
    quarter of that scale but preserves the record-sparsity statistics
    (each record sees well under 10% of the MACs on the floor).
    """
    spec = BuildingSpec(
        building_id="mall-floor",
        num_floors=1,
        width_m=180.0,
        depth_m=120.0,
        aps_per_floor=num_aps,
        records_per_floor=num_records,
        devices=DevicePopulation(num_devices=120, max_macs_low=10,
                                 max_macs_high=60),
    )
    return generate_building(spec, seed=seed)


def small_test_building(num_floors: int = 3, records_per_floor: int = 40,
                        aps_per_floor: int = 12, seed: int = 11,
                        building_id: str = "test-bldg") -> FingerprintDataset:
    """A small, fast building used throughout the test suite."""
    spec = BuildingSpec(
        building_id=building_id,
        num_floors=num_floors,
        width_m=40.0,
        depth_m=25.0,
        aps_per_floor=aps_per_floor,
        records_per_floor=records_per_floor,
        devices=DevicePopulation(num_devices=10),
    )
    return generate_building(spec, seed=seed)
