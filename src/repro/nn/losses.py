"""Loss functions for the NumPy neural-network substrate."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "SoftmaxCrossEntropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class Loss(ABC):
    """A differentiable training criterion."""

    @abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""


class MeanSquaredError(Loss):
    """Mean squared error, used by the autoencoder reconstruction objectives."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        return 2.0 * (predictions - targets) / predictions.size


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on integer class targets (from raw logits)."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        probabilities = softmax(predictions)
        targets = np.asarray(targets, dtype=np.int64)
        self._check_targets(predictions, targets)
        picked = probabilities[np.arange(targets.size), targets]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probabilities = softmax(predictions)
        targets = np.asarray(targets, dtype=np.int64)
        self._check_targets(predictions, targets)
        grad = probabilities
        grad[np.arange(targets.size), targets] -= 1.0
        return grad / targets.size

    @staticmethod
    def _check_targets(predictions: np.ndarray, targets: np.ndarray) -> None:
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ValueError("targets must be a 1-D array of class indices, one "
                             "per prediction row")
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= predictions.shape[1]:
            raise ValueError("target class index out of range")
