"""Sequential network container and mini-batch training loop."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .layers import Layer, Parameter
from .losses import Loss, softmax
from .optim import Adam, Optimizer

__all__ = ["Sequential", "TrainingHistory", "train_network"]


class Sequential(Layer):
    """A plain stack of layers applied in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    # Convenience inference helpers -----------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass in inference mode."""
        return self.forward(x, training=False)

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Argmax over the output logits."""
        return np.argmax(self.predict(x), axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities from the output logits."""
        return softmax(self.predict(x))


@dataclass
class TrainingHistory:
    """Per-epoch training (and optional validation) losses."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.train_loss:
            raise ValueError("no epochs were recorded")
        return self.train_loss[-1]


def train_network(network: Sequential, loss: Loss, inputs: np.ndarray,
                  targets: np.ndarray, epochs: int = 50, batch_size: int = 32,
                  optimizer: Optimizer | None = None,
                  validation: tuple[np.ndarray, np.ndarray] | None = None,
                  shuffle: bool = True,
                  seed: int | None = 0) -> TrainingHistory:
    """Mini-batch training loop.

    Parameters
    ----------
    network:
        The model to train (modified in place).
    loss:
        Training criterion.
    inputs, targets:
        Training data; ``targets`` is whatever the loss expects (class indices
        for cross-entropy, arrays for MSE).
    epochs, batch_size:
        Loop dimensions.
    optimizer:
        Defaults to Adam with its default learning rate over the network's
        parameters.
    validation:
        Optional ``(inputs, targets)`` evaluated (without training) per epoch.
    shuffle:
        Whether to reshuffle the training set every epoch.
    seed:
        Seed of the shuffling generator.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets)
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    if epochs < 1 or batch_size < 1:
        raise ValueError("epochs and batch_size must be positive")

    optimizer = optimizer or Adam(network.parameters())
    rng = np.random.default_rng(seed)
    history = TrainingHistory()
    count = inputs.shape[0]

    for _ in range(epochs):
        order = rng.permutation(count) if shuffle else np.arange(count)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, count, batch_size):
            batch_index = order[start:start + batch_size]
            x = inputs[batch_index]
            y = targets[batch_index]
            optimizer.zero_grad()
            predictions = network.forward(x, training=True)
            epoch_loss += loss.value(predictions, y)
            network.backward(loss.gradient(predictions, y))
            optimizer.step()
            batches += 1
        history.train_loss.append(epoch_loss / max(batches, 1))
        if validation is not None:
            val_x, val_y = validation
            val_pred = network.forward(np.asarray(val_x, dtype=np.float64),
                                       training=False)
            history.validation_loss.append(loss.value(val_pred, np.asarray(val_y)))
    return history
