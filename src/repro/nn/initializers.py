"""Weight initialisation schemes for the NumPy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "zeros"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (good default for sigmoid/tanh)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation (good default for ReLU activations)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    del rng
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolutional kernels: (kernel, in_channels, out_channels).
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive
