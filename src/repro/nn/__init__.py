"""A small NumPy neural-network substrate for the paper's DNN baselines."""

from .initializers import glorot_uniform, he_uniform, zeros
from .layers import Conv1D, Dense, Dropout, Flatten, Layer, Parameter, ReLU, Sigmoid, Tanh
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, softmax
from .network import Sequential, TrainingHistory, train_network
from .optim import SGD, Adam, Optimizer

__all__ = [
    "glorot_uniform",
    "he_uniform",
    "zeros",
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Conv1D",
    "Flatten",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "softmax",
    "Sequential",
    "TrainingHistory",
    "train_network",
    "Optimizer",
    "SGD",
    "Adam",
]
