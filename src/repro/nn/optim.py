"""Optimisers for the NumPy neural-network substrate."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Updates a fixed set of parameters from their accumulated gradients."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    @abstractmethod
    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                parameter.value += velocity
            else:
                parameter.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
