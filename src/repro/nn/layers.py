"""Layers of the NumPy neural-network substrate.

The GRAFICS paper compares against DNN baselines (Scalable-DNN, stacked
autoencoders, a 1-D convolutional autoencoder).  No deep-learning framework is
available offline, so this module provides the handful of layers those
baselines need, with explicit forward/backward passes.  Layers follow a small
protocol: ``forward(x, training)`` caches what ``backward(grad)`` needs, and
``parameters()`` exposes ``Parameter`` objects that optimisers update.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .initializers import glorot_uniform, he_uniform, zeros

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Conv1D",
    "Flatten",
]


@dataclass
class Parameter:
    """A trainable tensor with its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray = field(init=False)
    name: str = ""

    def __post_init__(self) -> None:
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer(ABC):
    """Base class for all layers."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output; cache anything backward() needs."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` (dL/d output) and return dL/d input."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of the layer (empty for activations)."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None,
                 initializer=glorot_uniform) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(initializer((in_features, out_features), rng),
                                name="dense.weight")
        self.bias = Parameter(zeros((out_features,), rng), name="dense.bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.weight.value.shape[0]:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.weight.value.shape[0]}), "
                f"got {x.shape}")
        self._input = x if training else None
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward() called before a training forward pass")
        self.weight.grad += self._input.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before a training forward pass")
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward() called before a training forward pass")
        return grad * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward() called before a training forward pass")
        return grad * (1.0 - self._output ** 2)


class Dropout(Layer):
    """Inverted dropout: active only during training."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Flatten(Layer):
    """Flattens ``(batch, length, channels)`` into ``(batch, length*channels)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() called before a training forward pass")
        return grad.reshape(self._shape)


class Conv1D(Layer):
    """1-D convolution with 'same' zero padding and stride 1.

    Input shape ``(batch, length, in_channels)``, output
    ``(batch, length, out_channels)``.  Implemented with an unfold (im2col)
    so forward and backward are plain matrix products; more than fast enough
    for the small autoencoder baselines of the paper.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        if kernel_size < 1 or kernel_size % 2 == 0:
            raise ValueError("kernel_size must be a positive odd number")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = Parameter(
            he_uniform((kernel_size, in_channels, out_channels), rng),
            name="conv1d.weight")
        self.bias = Parameter(zeros((out_channels,), rng), name="conv1d.bias")
        self._columns: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def _unfold(self, x: np.ndarray) -> np.ndarray:
        pad = self.kernel_size // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        batch, length, _ = x.shape
        columns = np.empty((batch, length, self.kernel_size, self.in_channels))
        for offset in range(self.kernel_size):
            columns[:, :, offset, :] = padded[:, offset:offset + length, :]
        return columns

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"Conv1D expected input (batch, length, {self.in_channels}), "
                f"got {x.shape}")
        columns = self._unfold(x)
        if training:
            self._columns = columns
            self._input_shape = x.shape
        flat_cols = columns.reshape(x.shape[0], x.shape[1], -1)
        flat_weight = self.weight.value.reshape(-1, self.out_channels)
        return flat_cols @ flat_weight + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._columns is None or self._input_shape is None:
            raise RuntimeError("backward() called before a training forward pass")
        batch, length, _ = self._input_shape
        flat_cols = self._columns.reshape(batch * length, -1)
        flat_grad = grad.reshape(batch * length, self.out_channels)
        self.weight.grad += (flat_cols.T @ flat_grad).reshape(self.weight.value.shape)
        self.bias.grad += flat_grad.sum(axis=0)

        flat_weight = self.weight.value.reshape(-1, self.out_channels)
        grad_columns = (flat_grad @ flat_weight.T).reshape(
            batch, length, self.kernel_size, self.in_channels)
        pad = self.kernel_size // 2
        grad_padded = np.zeros((batch, length + 2 * pad, self.in_channels))
        for offset in range(self.kernel_size):
            grad_padded[:, offset:offset + length, :] += grad_columns[:, :, offset, :]
        return grad_padded[:, pad:pad + length, :]

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]
