"""Background retrain execution with generation-fenced atomic installs.

The scheduler (:mod:`repro.stream.scheduler`) decides *when* a building is
due for a retrain; this module owns *how* the retrain runs.  The split
matters operationally: ``RetrainScheduler.maybe_retrain`` used to train on
the ingest thread, so a drifted building stalled every other building's
traffic for the duration of a ``GRAFICS`` fit.  :class:`RetrainExecutor`
moves the fit onto a worker pool — the ingest loop submits a job and keeps
flowing — and installs the finished model through the service's atomic
hot-swap path on completion.

Because installs can now race (two overlapping retrains of one building),
every executor install is *fenced* by a per-building generation counter: a
job snapshots the building's generation at submit time, and the finished
model is installed only if the generation is unchanged — a swap prepared
against generation G can never overwrite the model of generation G+1.
The check and the install happen under one lock, so the fence cannot be
interleaved.  The counter tracks installs *made through this executor*;
code that installs a model directly on the service (an operator rollback,
``load_building``) should call :meth:`RetrainExecutor.invalidate` so any
retrain already in flight is fenced out rather than silently overwriting
the manual install when it completes.

With ``max_workers=0`` the executor degrades to synchronous inline
execution — the exact behaviour (and, fits being deterministic, the exact
installed models) of the pre-split scheduler, which is what keeps the
async path testable: same job, same warm-start snapshot, same model.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..core.embedding.kernels import validate_kernel
from ..core.embedding.sampler import validate_sampler_mode
from ..core.persistence import _atomic_save_model, _registry_model_filename, load_model
from ..core.pipeline import GRAFICS
from ..faults import failpoints
from ..obs import runtime as obs
from ..obs.log import log_event

__all__ = ["RetrainJob", "RetrainCompletion", "RetrainExecutor"]


@dataclass(frozen=True)
class RetrainJob:
    """One retrain request: the training snapshot plus its fence token."""

    building_id: str
    dataset: object                  # FingerprintDataset (window snapshot)
    labels: Mapping[str, int]
    trigger: str
    warm_start: bool
    generation: int
    window_records: int = 0
    labeled_records: int = 0
    #: Trace active on the submitting thread (the ``stream.process`` span
    #: that triggered this retrain); the worker thread pins its
    #: ``stream.retrain`` span to it so drift → retrain → swap chains stay
    #: joinable across threads.
    trace_id: str | None = None


@dataclass(frozen=True)
class RetrainCompletion:
    """The outcome of one executed retrain job."""

    building_id: str
    trigger: str
    generation: int
    swapped: bool
    stale: bool = False
    duration_seconds: float = 0.0
    window_records: int = 0
    labeled_records: int = 0
    error: str | None = None
    #: Trace the retrain ran under (the submitting trace when one was
    #: live, otherwise the ``stream.retrain`` span's own fresh trace).
    trace_id: str | None = None


class RetrainExecutor:
    """Runs ``GRAFICS`` fits off the ingest thread; installs on completion.

    Parameters
    ----------
    service:
        The serving façade to install into — :class:`FloorServingService`
        or :class:`ShardedServingService`; only ``model_for``,
        ``install_building``, ``grafics_config`` and ``telemetry`` are used.
    max_workers:
        ``0`` executes jobs synchronously inside :meth:`submit` (the
        pre-split behaviour); ``>= 1`` runs them on a thread pool and
        surfaces results through :meth:`drain_completed`.
    model_dir:
        When set, every finished model is round-tripped through the
        persistence layer (atomic write, then reload) before installing, so
        what goes live is exactly what a later restart would load.
    train:
        Injectable training function ``(job, warm_start_embedding) ->
        GRAFICS`` — tests use it to control job timing and interleaving.
    kernel:
        Optional training-kernel override for executor-run fits
        (``"reference"``/``"fused"``, see
        :mod:`repro.core.embedding.kernels`).  ``None`` keeps the service's
        configured kernel.  Ignored when a custom ``train`` is injected.
    sampler_mode:
        Optional cold-path negative-sampler-mode override recorded on
        executor-trained models (``"exact"``/``"delta"``, see
        :class:`~repro.core.embedding.base.EmbeddingConfig`).  ``None``
        keeps the service's configured mode.  Ignored when a custom
        ``train`` is injected.
    fit_deadline_seconds:
        Wall budget (on the injected clock) for one fit.  A Python thread
        cannot be preempted mid-fit, so the budget is enforced *after* the
        fit returns: an overrun result is abandoned under the generation
        fence — never installed — and surfaces as an error completion, so
        the scheduler's backoff/breaker treats a runaway fit exactly like
        a failed one.  ``None`` disables the budget.
    """

    def __init__(self, service, max_workers: int = 0,
                 model_dir: str | Path | None = None,
                 train: Callable[[RetrainJob, object | None], GRAFICS] | None = None,
                 clock: Callable[[], float] = time.perf_counter,
                 kernel: str | None = None,
                 sampler_mode: str | None = None,
                 fit_deadline_seconds: float | None = None) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        if kernel is not None:
            validate_kernel(kernel)
        if sampler_mode is not None:
            validate_sampler_mode(sampler_mode)
        if fit_deadline_seconds is not None and fit_deadline_seconds <= 0.0:
            raise ValueError("fit_deadline_seconds must be positive (or None)")
        self.service = service
        self.fit_deadline_seconds = fit_deadline_seconds
        self.kernel = kernel
        self.sampler_mode = sampler_mode
        self.model_dir = Path(model_dir) if model_dir is not None else None
        self._train = train if train is not None else self._default_train
        self._clock = clock
        self._pool = (ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="retrain") if max_workers > 0 else None)
        #: Guards completion bookkeeping (the hot path: every
        #: ``pipeline.process`` drains completions through it).
        self._condition = threading.Condition()
        #: Guards the generation counters and the per-building lock map —
        #: held only for dict reads/writes, never across an install, so the
        #: ingest thread's ``submit``/``drain_completed`` never wait behind
        #: an install in progress.
        self._fence = threading.Lock()
        #: One lock per building serialises that building's
        #: check-install-bump sequences against each other (and against
        #: :meth:`invalidate`); installs for different buildings proceed in
        #: parallel.
        self._building_locks: dict[str, threading.Lock] = {}
        self._generations: dict[str, int] = {}
        self._completed: list[RetrainCompletion] = []
        self._inflight = 0
        self.executed_total = 0
        self.stale_total = 0
        self.errors_total = 0
        self.deadline_exceeded_total = 0

    # ------------------------------------------------------------------ state
    @property
    def synchronous(self) -> bool:
        """Whether jobs run inline in :meth:`submit` (``max_workers=0``)."""
        return self._pool is None

    @property
    def pending_count(self) -> int:
        with self._condition:
            return self._inflight

    def generation(self, building_id: str) -> int:
        """The building's current install generation (0 before any swap)."""
        with self._fence:
            return self._generations.get(building_id, 0)

    def _building_lock(self, building_id: str) -> threading.Lock:
        with self._fence:
            lock = self._building_locks.get(building_id)
            if lock is None:
                lock = self._building_locks[building_id] = threading.Lock()
            return lock

    def invalidate(self, building_id: str) -> int:
        """Fence out in-flight retrains around a manual model install.

        Bumps the building's generation so any retrain submitted before the
        bump completes as stale instead of overwriting the manual install.
        Call this *before* installing a model on the service outside the
        executor (operator rollback, ``load_building``...) — an executor
        install already past its fence check finishes first (the bump waits
        on the building's install lock), so everything the executor does
        after the bump is guaranteed stale.  Returns the new generation.
        """
        with self._building_lock(building_id):
            with self._fence:
                generation = self._generations.get(building_id, 0) + 1
                self._generations[building_id] = generation
                return generation

    # ----------------------------------------------------------------- intake
    def submit(self, building_id: str, dataset, labels: Mapping[str, int],
               trigger: str, warm_start: bool = True,
               window_records: int = 0,
               labeled_records: int = 0) -> RetrainCompletion | None:
        """Execute (synchronous) or enqueue (background) one retrain.

        The warm-start embedding and the generation fence are snapshotted
        *now*, against the currently installed model; the fit itself runs
        against exactly this snapshot regardless of what installs in the
        meantime — the fence decides at completion whether the result may
        still go live.  Returns the completion when synchronous, ``None``
        when the job was queued (collect it via :meth:`drain_completed`).
        """
        with self._fence:
            generation = self._generations.get(building_id, 0)
        previous_embedding = None
        if warm_start:
            try:
                previous_embedding = self.service.model_for(
                    building_id).embedding
            except KeyError:
                previous_embedding = None
        job = RetrainJob(building_id=building_id, dataset=dataset,
                         labels=dict(labels), trigger=trigger,
                         warm_start=warm_start, generation=generation,
                         window_records=window_records,
                         labeled_records=labeled_records,
                         trace_id=obs.current_trace_id())
        if self._pool is None:
            try:
                return self._execute(job, previous_embedding)
            except Exception:
                # Count inline failures the same way _run counts pooled
                # ones, then let the caller's resilience path (the
                # scheduler re-pends and backs off) handle the raise.
                self.errors_total += 1
                self.service.telemetry.increment("retrain_errors_total")
                raise
        with self._condition:
            self._inflight += 1
        self._update_gauge()
        self._pool.submit(self._run, job, previous_embedding)
        return None

    # -------------------------------------------------------------- execution
    def _default_train(self, job: RetrainJob,
                       previous_embedding) -> GRAFICS:
        model = GRAFICS(self.service.grafics_config)
        model.fit(job.dataset, job.labels, warm_start=previous_embedding,
                  kernel=self.kernel, sampler_mode=self.sampler_mode)
        if self.model_dir is not None:
            self.model_dir.mkdir(parents=True, exist_ok=True)
            path = self.model_dir / _registry_model_filename(job.building_id)
            _atomic_save_model(model, path)
            model = load_model(path)
        return model

    def _execute(self, job: RetrainJob,
                 previous_embedding) -> RetrainCompletion:
        # Pinning the span to the job's submit-time trace joins the
        # worker-thread retrain onto the stream.process trace that
        # triggered it (root spans otherwise mint a fresh trace).
        with obs.span("stream.retrain", trace_id=job.trace_id) as retrain_span:
            retrain_span.set("building", job.building_id)
            retrain_span.set("trigger", job.trigger)
            retrain_span.set("generation", job.generation)
            failpoints.fire("retrain.fit", building_id=job.building_id)
            started = self._clock()
            model = self._train(job, previous_embedding)
            duration = self._clock() - started
            self.service.telemetry.observe("retrain_seconds", duration)
            trace_id = (retrain_span.span.trace_id
                        if retrain_span.span is not None else job.trace_id)
            deadline = self.fit_deadline_seconds
            if deadline is not None and duration > deadline:
                # Too late to preempt the fit; what we can still do is
                # refuse to install its result.  The generation fence makes
                # abandonment safe, and reporting an error completion folds
                # overruns into the scheduler's backoff/breaker path.
                self.deadline_exceeded_total += 1
                self.service.telemetry.increment(
                    "retrain_deadline_exceeded_total")
                log_event("retrain_deadline_exceeded",
                          building_id=job.building_id, trigger=job.trigger,
                          duration_seconds=duration,
                          deadline_seconds=deadline)
                retrain_span.set("deadline_exceeded", True)
                return RetrainCompletion(
                    building_id=job.building_id, trigger=job.trigger,
                    generation=job.generation, swapped=False,
                    duration_seconds=duration,
                    window_records=job.window_records,
                    labeled_records=job.labeled_records,
                    error=(f"fit overran its {deadline:g}s deadline "
                           f"({duration:.3f}s); result abandoned"),
                    trace_id=trace_id)
            completion = self._install(job, model, duration, trace_id)
            retrain_span.set("swapped", completion.swapped)
            return completion

    def _install(self, job: RetrainJob, model: GRAFICS, duration: float,
                 trace_id: str | None = None) -> RetrainCompletion:
        """Install under the generation fence; stale results are discarded.

        The check-install-bump sequence holds the *building's* install
        lock, so two completions for the same building serialise: whichever
        lands first bumps the generation and the other is fenced out — a
        swap prepared against generation G never overwrites G+1.  Neither
        the completion lock nor the global fence is held across the install
        itself, so ``drain_completed``/``submit`` on the ingest thread
        never wait behind an install in progress, and installs for
        different buildings proceed in parallel.
        """
        with self._building_lock(job.building_id):
            with self._fence:
                current = self._generations.get(job.building_id, 0)
                stale = current != job.generation
            if stale:
                self.stale_total += 1
                self.service.telemetry.increment("retrains_stale_total")
                log_event("retrain_fenced_stale", building_id=job.building_id,
                          trigger=job.trigger, job_generation=job.generation,
                          current_generation=current)
                return RetrainCompletion(
                    building_id=job.building_id, trigger=job.trigger,
                    generation=job.generation, swapped=False, stale=True,
                    duration_seconds=duration,
                    window_records=job.window_records,
                    labeled_records=job.labeled_records, trace_id=trace_id)
            self.service.install_building(job.building_id, model,
                                          vocabulary=frozenset(
                                              job.dataset.macs))
            with self._fence:
                self._generations[job.building_id] = current + 1
            self.executed_total += 1
        self.service.telemetry.increment("retrains_executed_total")
        return RetrainCompletion(
            building_id=job.building_id, trigger=job.trigger,
            generation=job.generation, swapped=True,
            duration_seconds=duration, window_records=job.window_records,
            labeled_records=job.labeled_records, trace_id=trace_id)

    def _run(self, job: RetrainJob, previous_embedding) -> None:
        """Worker-pool wrapper: one failed fit must not kill the pool."""
        try:
            completion = self._execute(job, previous_embedding)
        except Exception as error:  # noqa: BLE001 — surfaced as a completion
            self.errors_total += 1
            self.service.telemetry.increment("retrain_errors_total")
            completion = RetrainCompletion(
                building_id=job.building_id, trigger=job.trigger,
                generation=job.generation, swapped=False,
                window_records=job.window_records,
                labeled_records=job.labeled_records, error=str(error),
                trace_id=job.trace_id)
        except BaseException:
            # A simulated process kill (or a real KeyboardInterrupt) is not
            # a completion — but it must still release the in-flight slot,
            # or join() would wait forever on a job that will never land.
            with self._condition:
                self._inflight -= 1
                self._condition.notify_all()
            self._update_gauge()
            raise
        with self._condition:
            self._completed.append(completion)
            self._inflight -= 1
            self._condition.notify_all()
        self._update_gauge()

    # ------------------------------------------------------------ completions
    def drain_completed(self) -> list[RetrainCompletion]:
        """Remove and return every completion finished since the last drain."""
        with self._condition:
            completed, self._completed = self._completed, []
        return completed

    def join(self, timeout: float | None = None) -> bool:
        """Block until no job is in flight; ``False`` on timeout."""
        with self._condition:
            return self._condition.wait_for(lambda: self._inflight == 0,
                                            timeout)

    def shutdown(self) -> None:
        """Wait for in-flight jobs and release the worker pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def _update_gauge(self) -> None:
        self.service.telemetry.set_gauge("retrains_pending",
                                         self.pending_count)

    def stats(self) -> dict[str, object]:
        with self._condition:
            return {
                "mode": "synchronous" if self._pool is None else "background",
                "pending": self._inflight,
                "executed_total": self.executed_total,
                "stale_total": self.stale_total,
                "errors_total": self.errors_total,
                "deadline_exceeded_total": self.deadline_exceeded_total,
                "generations": dict(self._generations),
            }
