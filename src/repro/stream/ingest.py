"""Streaming ingestion: filter chain, building attribution, record buffers.

The ingestor is the mouth of the continuous-learning pipeline.  Every
arriving record passes the quality-filter chain
(:mod:`repro.stream.filters`), is attributed to a building (via a caller
supplied attribution function — in production the serving router), and
lands in that building's bounded FIFO buffer, from which the window
maintainer drains it.  Rejections never raise: they come back as typed
:class:`IngestDecision` values and per-reason counters, because a stream
processor must survive arbitrarily malformed crowdsourced input.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..core.inference import UnknownEnvironmentError
from ..core.persistence import record_from_payload, record_to_payload
from ..core.types import SignalRecord
from .filters import QualityFilter, default_filters

__all__ = ["IngestDecision", "StreamIngestor"]


@dataclass(frozen=True)
class IngestDecision:
    """The outcome of submitting one record to the ingestor."""

    record_id: str
    accepted: bool
    building_id: str | None = None
    filter_name: str | None = None  # which stage rejected (None if accepted)
    reason: str | None = None


class StreamIngestor:
    """Quality-filters incoming records and buffers them per building.

    Parameters
    ----------
    attribute:
        Maps an admitted record to its building id; expected to raise
        :class:`UnknownEnvironmentError` for records that match no building
        (the serving router's contract).  ``None`` means every submission
        must carry an explicit ``building_id``.
    filters:
        The quality-filter chain, applied in order; defaults to
        :func:`default_filters`.
    buffer_capacity:
        Per-building buffer bound.  When a buffer is full the *oldest*
        buffered record is dropped (and counted) in favour of the new one —
        under overload, fresher data is worth more to a sliding window.
    """

    def __init__(self,
                 attribute: Callable[[SignalRecord], str] | None = None,
                 filters: Sequence[QualityFilter] | None = None,
                 buffer_capacity: int = 1024) -> None:
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be at least 1")
        self.attribute = attribute
        self.filters = list(filters) if filters is not None else default_filters()
        self.buffer_capacity = buffer_capacity
        self._buffers: dict[str, deque[SignalRecord]] = {}
        self.submitted_total = 0
        self.accepted_total = 0
        self.unroutable_total = 0
        self.overflow_total = 0
        self.rejected_by_filter: dict[str, int] = {}

    # ----------------------------------------------------------------- intake
    def submit(self, record: SignalRecord,
               building_id: str | None = None) -> IngestDecision:
        """Filter, attribute and buffer one record; never raises on bad input."""
        self.submitted_total += 1
        for stage in self.filters:
            reason = stage.admit(record)
            if reason is not None:
                self.rejected_by_filter[stage.name] = \
                    self.rejected_by_filter.get(stage.name, 0) + 1
                return IngestDecision(record_id=record.record_id,
                                      accepted=False,
                                      filter_name=stage.name, reason=reason)

        if building_id is None:
            if self.attribute is None:
                raise ValueError(
                    "no attribution function configured; pass building_id "
                    "explicitly or construct the ingestor with attribute=")
            try:
                building_id = self.attribute(record)
            except UnknownEnvironmentError as error:
                self.unroutable_total += 1
                return IngestDecision(record_id=record.record_id,
                                      accepted=False,
                                      filter_name="router", reason=str(error))

        buffer = self._buffers.get(building_id)
        if buffer is None:
            buffer = self._buffers[building_id] = deque()
        if len(buffer) >= self.buffer_capacity:
            buffer.popleft()
            self.overflow_total += 1
        buffer.append(record)
        self.accepted_total += 1
        return IngestDecision(record_id=record.record_id, accepted=True,
                              building_id=building_id)

    def submit_many(self, records: Iterable[SignalRecord],
                    building_id: str | None = None) -> list[IngestDecision]:
        return [self.submit(record, building_id=building_id)
                for record in records]

    # ------------------------------------------------------------------ drain
    def drain(self, building_id: str) -> list[SignalRecord]:
        """Remove and return everything buffered for one building."""
        buffer = self._buffers.pop(building_id, None)
        return list(buffer) if buffer is not None else []

    def drain_all(self) -> dict[str, list[SignalRecord]]:
        """Remove and return all buffers, keyed by building."""
        drained = {building_id: list(buffer)
                   for building_id, buffer in self._buffers.items()}
        self._buffers.clear()
        return drained

    # ------------------------------------------------------------------ state
    @property
    def buffered_count(self) -> int:
        return sum(len(buffer) for buffer in self._buffers.values())

    def buffered_by_building(self) -> dict[str, int]:
        return {building_id: len(buffer)
                for building_id, buffer in self._buffers.items()}

    def stats(self) -> dict[str, object]:
        return {
            "submitted": self.submitted_total,
            "accepted": self.accepted_total,
            "unroutable": self.unroutable_total,
            "buffer_overflows": self.overflow_total,
            "rejected_by_filter": dict(sorted(self.rejected_by_filter.items())),
            "buffered": self.buffered_count,
        }

    # ------------------------------------------------------------- checkpoint
    def state_dict(self) -> dict:
        """Counters, live buffers and per-filter state for a checkpoint."""
        return {
            "counters": {
                "submitted": self.submitted_total,
                "accepted": self.accepted_total,
                "unroutable": self.unroutable_total,
                "overflow": self.overflow_total,
                "rejected_by_filter": dict(self.rejected_by_filter),
            },
            "buffers": {building_id: [record_to_payload(record)
                                      for record in buffer]
                        for building_id, buffer in self._buffers.items()},
            "filters": [{"name": stage.name, "state": stage.state_dict()}
                        for stage in self.filters],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild counters, buffers and filter state from a checkpoint.

        The resuming ingestor must be configured with the same filter chain
        (same stages, same order) as the one that checkpointed — the dedup
        filter's memory is part of the replay semantics, so a mismatched
        chain is an error rather than a silent divergence.
        """
        saved_names = [blob["name"] for blob in state["filters"]]
        live_names = [stage.name for stage in self.filters]
        if saved_names != live_names:
            raise ValueError(
                f"filter chain mismatch: checkpoint has {saved_names}, "
                f"this ingestor has {live_names}")
        for stage, blob in zip(self.filters, state["filters"]):
            stage.restore_state(blob["state"])
        counters = state["counters"]
        self.submitted_total = int(counters["submitted"])
        self.accepted_total = int(counters["accepted"])
        self.unroutable_total = int(counters["unroutable"])
        self.overflow_total = int(counters["overflow"])
        self.rejected_by_filter = {str(name): int(count)
                                   for name, count
                                   in counters["rejected_by_filter"].items()}
        self._buffers = {
            building_id: deque(record_from_payload(blob) for blob in blobs)
            for building_id, blobs in state["buffers"].items()}
