"""Pluggable quality filters for streaming ingestion.

Crowdsourced RSS streams are noisy: truncated scans with one or two
readings, malformed RSS values outside any plausible dBm range, and heavy
bursts of near-identical fingerprints from phones sitting still.  Each
filter inspects one :class:`SignalRecord` and either admits it (``None``)
or rejects it with a short machine-readable reason that the ingestor turns
into a per-reason telemetry counter.

Filters are deliberately tiny, stateful-where-needed objects so deployments
can compose their own chain; :func:`default_filters` builds the chain the
paper's online phase implies (minimum record size + near-duplicate dedup).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

from ..core.types import SignalRecord
from ..serving.cache import fingerprint_key

__all__ = [
    "QualityFilter",
    "MinReadingsFilter",
    "RssBoundsFilter",
    "NearDuplicateFilter",
    "default_filters",
]


class QualityFilter(ABC):
    """One stage of the ingestion filter chain."""

    #: Short identifier used in telemetry counters and rejection reasons.
    name: str = "filter"

    @abstractmethod
    def admit(self, record: SignalRecord) -> str | None:
        """Return ``None`` to admit ``record``, or a rejection reason."""

    def reset(self) -> None:
        """Drop any internal state (stateless filters need not override)."""

    def state_dict(self) -> dict:
        """Internal state for a stream checkpoint (stateless: empty)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Rebuild internal state from :meth:`state_dict` (stateless: no-op)."""


class MinReadingsFilter(QualityFilter):
    """Reject records sensing fewer than ``min_readings`` MACs.

    A record with one or two readings barely constrains its position in the
    bipartite graph (paper Fig. 1a shows the record-size distribution);
    admitting it adds a near-isolated node that dilutes the embedding.
    """

    name = "min_readings"

    def __init__(self, min_readings: int = 3) -> None:
        if min_readings < 1:
            raise ValueError("min_readings must be at least 1")
        self.min_readings = min_readings

    def admit(self, record: SignalRecord) -> str | None:
        if len(record.rss) < self.min_readings:
            return (f"record senses {len(record.rss)} MACs, "
                    f"fewer than the minimum {self.min_readings}")
        return None


class RssBoundsFilter(QualityFilter):
    """Reject records carrying RSS readings outside a plausible dBm range.

    The lower bound also protects the graph: the default edge weight
    ``f(RSS) = RSS + 120`` must stay strictly positive, so readings at or
    below -120 dBm would crash ``add_record`` deep inside the window
    maintainer instead of being counted here.
    """

    name = "rss_bounds"

    def __init__(self, min_rss: float = -119.0, max_rss: float = 0.0) -> None:
        if min_rss >= max_rss:
            raise ValueError("min_rss must be below max_rss")
        self.min_rss = min_rss
        self.max_rss = max_rss

    def admit(self, record: SignalRecord) -> str | None:
        for mac, rss in record.rss.items():
            if not self.min_rss <= rss <= self.max_rss:
                return (f"RSS {rss!r} for MAC {mac!r} outside plausible "
                        f"range [{self.min_rss}, {self.max_rss}]")
        return None


class NearDuplicateFilter(QualityFilter):
    """Reject records whose quantised fingerprint was seen recently.

    Reuses the serving cache's canonical fingerprint key (MAC set + RSS
    rounded to ``quantum``): two scans that differ only by sub-quantum noise
    map to the same key.  The filter remembers the last ``capacity`` keys in
    LRU order — the prediction cache makes duplicates cheap to *serve*, but
    letting them into the training window would let one stationary phone
    crowd out genuine spatial coverage.
    """

    name = "near_duplicate"

    #: Scope mixed into the fingerprint key; dedup happens before building
    #: attribution, so the key must not depend on a building id.
    _SCOPE = "ingest"

    def __init__(self, capacity: int = 2048, quantum: float = 1.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if quantum <= 0.0:
            raise ValueError("quantum must be positive")
        self.capacity = capacity
        self.quantum = quantum
        self._seen: OrderedDict[str, None] = OrderedDict()

    def admit(self, record: SignalRecord) -> str | None:
        key = fingerprint_key(self._SCOPE, record, quantum=self.quantum)
        if key in self._seen:
            self._seen.move_to_end(key)
            return "near-duplicate of a recently ingested fingerprint"
        self._seen[key] = None
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return None

    def reset(self) -> None:
        self._seen.clear()

    def state_dict(self) -> dict:
        """The recently seen fingerprint keys, oldest first.

        Without this, a resumed pipeline would re-admit the stationary
        bursts its predecessor had already deduplicated — replay after
        resume would diverge from the uninterrupted run.
        """
        return {"seen": list(self._seen)}

    def restore_state(self, state: dict) -> None:
        self._seen.clear()
        for key in state["seen"]:
            self._seen[str(key)] = None


def default_filters(min_readings: int = 3,
                    dedup_capacity: int = 2048,
                    dedup_quantum: float = 1.0) -> list[QualityFilter]:
    """The standard ingestion chain: size check, bounds check, dedup."""
    return [
        MinReadingsFilter(min_readings=min_readings),
        RssBoundsFilter(),
        NearDuplicateFilter(capacity=dedup_capacity, quantum=dedup_quantum),
    ]
