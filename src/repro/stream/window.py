"""Sliding-window bipartite graphs: bounded memory under unbounded traffic.

Each building accumulates a live :class:`BipartiteGraph` over the most
recent records only.  Appending past the window bound (record count and/or
record age) evicts the oldest records through
``BipartiteGraph.remove_record`` with orphaned-MAC pruning, so an AP that
was only ever observed by since-evicted records leaves the graph with them
— exactly the AP-removal adaptivity of paper Section III-A, driven
continuously instead of by hand.  The window owns the record objects too,
so the retrain scheduler can turn it into a training dataset at any moment.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from ..core.graph import BipartiteGraph, NodeKind
from ..core.persistence import record_from_payload, record_to_payload
from ..core.types import FingerprintDataset, SignalRecord
from ..core.weighting import WeightFunction

__all__ = ["WindowConfig", "WindowEviction", "SlidingWindowGraph", "WindowManager"]


@dataclass(frozen=True)
class WindowConfig:
    """Bounds of a per-building sliding window.

    Attributes
    ----------
    max_records:
        Hard cap on live records; appending the ``max_records + 1``-th
        record evicts the oldest.
    max_age_seconds:
        Optional age bound (by arrival time on the injected clock); expired
        records are evicted on :meth:`SlidingWindowGraph.expire` and
        opportunistically on every append.
    """

    max_records: int = 512
    max_age_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_records < 1:
            raise ValueError("max_records must be at least 1")
        if self.max_age_seconds is not None and self.max_age_seconds <= 0.0:
            raise ValueError("max_age_seconds must be positive (or None)")


@dataclass(frozen=True)
class WindowEviction:
    """What one maintenance step removed from the window."""

    record_ids: tuple[str, ...] = ()
    pruned_macs: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.record_ids)


@dataclass
class _Slot:
    record: SignalRecord
    arrived_at: float


class SlidingWindowGraph:
    """One building's recent records as an incrementally maintained graph."""

    def __init__(self, config: WindowConfig | None = None,
                 weight_function: WeightFunction | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or WindowConfig()
        self.graph = BipartiteGraph(weight_function=weight_function)
        self._clock = clock
        self._slots: deque[_Slot] = deque()
        self.appended_total = 0
        self.evicted_total = 0
        self.pruned_macs_total = 0

    # ---------------------------------------------------------------- content
    def __len__(self) -> int:
        return len(self._slots)

    @property
    def records(self) -> list[SignalRecord]:
        """Live records, oldest first (the retraining order)."""
        return [slot.record for slot in self._slots]

    def has_record(self, record_id: str) -> bool:
        return self.graph.has_node(NodeKind.RECORD, record_id)

    @property
    def mac_vocabulary(self) -> frozenset[str]:
        """MACs currently observed by at least one live record."""
        return self.graph.mac_vocabulary()

    @property
    def node_count(self) -> int:
        """Live graph nodes (records + MACs) — the bounded-memory metric."""
        return self.graph.num_nodes

    def as_dataset(self, building_id: str) -> FingerprintDataset:
        """The live window as a training dataset (records in window order)."""
        return FingerprintDataset(records=self.records,
                                  building_id=building_id)

    # ----------------------------------------------------------- maintenance
    def append(self, record: SignalRecord,
               now: float | None = None) -> WindowEviction:
        """Add one record, then evict whatever the bounds no longer admit."""
        if self.graph.has_node(NodeKind.RECORD, record.record_id):
            raise ValueError(
                f"record {record.record_id!r} is already in the window")
        now = self._clock() if now is None else now
        self.graph.add_record(record)
        self._slots.append(_Slot(record=record, arrived_at=now))
        self.appended_total += 1
        return self._evict(now)

    def expire(self, now: float | None = None) -> WindowEviction:
        """Evict records that aged out (for idle buildings between appends)."""
        return self._evict(self._clock() if now is None else now)

    def _evict(self, now: float) -> WindowEviction:
        evicted: list[str] = []
        pruned: list[str] = []
        while self._slots:
            over_count = len(self._slots) > self.config.max_records
            over_age = (self.config.max_age_seconds is not None
                        and now - self._slots[0].arrived_at
                        >= self.config.max_age_seconds)
            if not (over_count or over_age):
                break
            slot = self._slots.popleft()
            pruned.extend(self.graph.remove_record(slot.record.record_id,
                                                   prune_orphaned_macs=True))
            evicted.append(slot.record.record_id)
        self.evicted_total += len(evicted)
        self.pruned_macs_total += len(pruned)
        return WindowEviction(record_ids=tuple(evicted),
                              pruned_macs=tuple(pruned))

    # ------------------------------------------------------------- checkpoint
    def state_dict(self, now: float | None = None) -> dict:
        """The live window as a JSON-serialisable checkpoint payload.

        Arrival times are stored as *ages* relative to ``now``, not as raw
        clock values — monotonic clocks restart from an arbitrary origin, so
        absolute times would make age-based eviction nonsense after a
        restart, while ages transplant cleanly onto the resuming process's
        clock.
        """
        now = self._clock() if now is None else now
        return {
            "slots": [{"record": record_to_payload(slot.record),
                       "age": now - slot.arrived_at}
                      for slot in self._slots],
            "appended_total": self.appended_total,
            "evicted_total": self.evicted_total,
            "pruned_macs_total": self.pruned_macs_total,
        }

    def restore_state(self, state: dict, now: float | None = None) -> None:
        """Rebuild the window (graph included) from a checkpoint payload."""
        if self._slots:
            raise ValueError("can only restore into an empty window")
        now = self._clock() if now is None else now
        for blob in state["slots"]:
            record = record_from_payload(blob["record"])
            self.graph.add_record(record)
            self._slots.append(_Slot(record=record,
                                     arrived_at=now - float(blob["age"])))
        self.appended_total = int(state["appended_total"])
        self.evicted_total = int(state["evicted_total"])
        self.pruned_macs_total = int(state["pruned_macs_total"])


@dataclass
class WindowManager:
    """Per-building windows created on demand with one shared configuration."""

    config: WindowConfig = field(default_factory=WindowConfig)
    weight_function: WeightFunction | None = None
    clock: Callable[[], float] = time.monotonic
    _windows: dict[str, SlidingWindowGraph] = field(default_factory=dict)

    def window_for(self, building_id: str) -> SlidingWindowGraph:
        window = self._windows.get(building_id)
        if window is None:
            window = self._windows[building_id] = SlidingWindowGraph(
                self.config, weight_function=self.weight_function,
                clock=self.clock)
        return window

    def append(self, building_id: str, record: SignalRecord) -> WindowEviction:
        return self.window_for(building_id).append(record)

    @property
    def building_ids(self) -> list[str]:
        return list(self._windows)

    @property
    def total_nodes(self) -> int:
        return sum(w.node_count for w in self._windows.values())

    @property
    def total_records(self) -> int:
        return sum(len(w) for w in self._windows.values())

    def stats(self) -> dict[str, dict[str, int]]:
        return {building_id: {"records": len(window),
                              "macs": window.graph.num_macs,
                              "nodes": window.node_count,
                              "evicted": window.evicted_total,
                              "pruned_macs": window.pruned_macs_total}
                for building_id, window in self._windows.items()}

    # ------------------------------------------------------------- checkpoint
    def state_dict(self, now: float | None = None) -> dict:
        """Every building's window as one checkpoint payload."""
        now = self.clock() if now is None else now
        return {"buildings": {building_id: window.state_dict(now)
                              for building_id, window in self._windows.items()}}

    def restore_state(self, state: dict, now: float | None = None) -> None:
        """Recreate per-building windows from a checkpoint payload."""
        now = self.clock() if now is None else now
        for building_id, blob in state["buildings"].items():
            self.window_for(building_id).restore_state(blob, now)
