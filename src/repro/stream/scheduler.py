"""Retrain scheduling: turning drift signals into atomic hot swaps.

The scheduler owns the decision *when* a building's model is rebuilt from
its sliding window and *how*: off to the side on a fresh ``GRAFICS``
instance (the live model keeps serving), warm-started from the previous
embedding for nodes surviving the window, then atomically installed through
``FloorServingService.retrain_building`` → ``install_building`` — which
also invalidates that building's cache entries and updates its router
postings incrementally.

Triggers are (a) drift events targeted at a building and (b) an optional
every-N-records cadence.  Guards keep retrains sane: a minimum window size,
a minimum number of floor-labeled records in the window (crowdsourced
labels ride in on the records themselves), and a per-building cooldown so
one noisy signal cannot thrash the trainer.  Every decision — including the
refusals — is recorded as a :class:`RetrainReport` for observability.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from ..serving.service import FloorServingService
from .drift import DriftEvent
from .window import WindowManager

__all__ = ["SchedulerConfig", "RetrainReport", "RetrainScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Triggers and guards of the retrain scheduler.

    Attributes
    ----------
    retrain_every_records:
        Optional cadence trigger: retrain a building every N records
        appended to its window, drift or not.  ``None`` disables it.
    min_window_records:
        Refuse to retrain from a window smaller than this.
    min_labeled_records:
        Refuse to retrain unless the window holds at least this many
        floor-labeled records (GRAFICS needs labels to name clusters).
    cooldown_records:
        After a retrain, ignore further triggers for the building until
        this many new records were appended to its window.
    warm_start:
        Initialise the retrain from the previous model's embeddings for
        surviving nodes (see ``GRAFICS.fit(warm_start=...)``).
    """

    retrain_every_records: int | None = None
    min_window_records: int = 32
    min_labeled_records: int = 2
    cooldown_records: int = 0
    warm_start: bool = True

    def __post_init__(self) -> None:
        if (self.retrain_every_records is not None
                and self.retrain_every_records < 1):
            raise ValueError("retrain_every_records must be positive (or None)")
        if self.min_window_records < 1:
            raise ValueError("min_window_records must be at least 1")
        if self.min_labeled_records < 1:
            raise ValueError("min_labeled_records must be at least 1")
        if self.cooldown_records < 0:
            raise ValueError("cooldown_records must be non-negative")


@dataclass(frozen=True)
class RetrainReport:
    """One scheduling decision: a completed swap or a refused trigger."""

    building_id: str
    trigger: str                 # "drift:<kind>" | "record_count"
    swapped: bool
    window_records: int = 0
    labeled_records: int = 0
    duration_seconds: float = 0.0
    skipped_reason: str | None = None


class RetrainScheduler:
    """Decides when to rebuild a building from its window and hot-swap it."""

    def __init__(self, service: FloorServingService, windows: WindowManager,
                 config: SchedulerConfig | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.service = service
        self.windows = windows
        self.config = config or SchedulerConfig()
        self._clock = clock
        self._pending: dict[str, str] = {}       # building -> trigger
        self._appended: dict[str, int] = {}      # records since last retrain
        self._last_skip: dict[str, str] = {}     # building -> last skip reason
        self.history: list[RetrainReport] = []
        self.retrains_total = 0

    # ---------------------------------------------------------------- signals
    def note_drift(self, event: DriftEvent) -> None:
        """Mark a building for retraining because a drift event targeted it.

        Registry-wide events (``building_id is None``, e.g. rejection-rate
        drift) have no building to retrain; they are surfaced to operators
        through the pipeline's results and stats instead.
        """
        if event.building_id is None:
            return
        self._pending.setdefault(event.building_id,
                                 f"drift:{event.kind.value}")

    def note_append(self, building_id: str) -> None:
        """Count one record appended to a building's window (cadence/cooldown)."""
        self._appended[building_id] = self._appended.get(building_id, 0) + 1
        every = self.config.retrain_every_records
        if (every is not None
                and self._appended[building_id] % every == 0):
            self._pending.setdefault(building_id, "record_count")

    # ----------------------------------------------------------------- action
    def maybe_retrain(self, building_id: str) -> RetrainReport | None:
        """Retrain + hot-swap ``building_id`` if it is due; report what happened.

        Returns ``None`` when nothing was pending.  A pending trigger that
        fails a guard (cooldown, window too small, too few labels) *stays
        pending* — drift events latch in the detector, so dropping the
        trigger here would lose the drift forever even after enough data
        arrived.  The first refusal per distinct reason is recorded as a
        skip report so operators can see why nothing swapped; repeats of
        the same reason return ``None`` instead of flooding the history.
        """
        trigger = self._pending.get(building_id)
        if trigger is None:
            return None

        appended = self._appended.get(building_id, 0)
        if 0 < appended <= self.config.cooldown_records:
            return None  # stays pending until the cooldown elapses

        window = self.windows.window_for(building_id)
        if len(window) < self.config.min_window_records:
            return self._skip("window", RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                window_records=len(window),
                skipped_reason=f"window holds {len(window)} records, "
                               f"needs {self.config.min_window_records}"))

        labels = {record.record_id: record.floor
                  for record in window.records if record.floor is not None}
        if len(labels) < self.config.min_labeled_records:
            return self._skip("labels", RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                window_records=len(window), labeled_records=len(labels),
                skipped_reason=f"window holds {len(labels)} labeled records, "
                               f"needs {self.config.min_labeled_records}"))

        del self._pending[building_id]
        self._last_skip.pop(building_id, None)
        dataset = window.as_dataset(building_id)
        started = self._clock()
        self.service.retrain_building(dataset, labels,
                                      warm_start=self.config.warm_start)
        duration = self._clock() - started
        self._appended[building_id] = 0
        self.retrains_total += 1
        report = RetrainReport(
            building_id=building_id, trigger=trigger, swapped=True,
            window_records=len(window), labeled_records=len(labels),
            duration_seconds=duration)
        self.history.append(report)
        return report

    def _skip(self, guard: str,
              report: RetrainReport) -> RetrainReport | None:
        """Record one skip per guard transition; the trigger stays pending."""
        if self._last_skip.get(report.building_id) == guard:
            return None
        self._last_skip[report.building_id] = guard
        self.history.append(report)
        return report

    # ------------------------------------------------------------------ state
    @property
    def pending(self) -> dict[str, str]:
        return dict(self._pending)

    def stats(self) -> dict[str, object]:
        swapped = [r for r in self.history if r.swapped]
        return {
            "retrains_total": self.retrains_total,
            "skipped_total": len(self.history) - len(swapped),
            "pending": dict(self._pending),
            "last_retrain": (swapped[-1].building_id if swapped else None),
        }
