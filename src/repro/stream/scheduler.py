"""Retrain scheduling: turning drift signals into atomic hot swaps.

The scheduler owns the decision *when* a building's model is rebuilt from
its sliding window; the *how* lives in :class:`~repro.stream.executor.
RetrainExecutor`, which runs the ``GRAFICS`` fit off to the side (inline
by default, on a background worker pool when configured) and atomically
installs the result through the serving façade's hot-swap path — cache
invalidation and incremental router-posting updates included — under a
per-building generation fence.

Triggers are (a) drift events targeted at a building and (b) an optional
every-N-records cadence.  Guards keep retrains sane: a minimum window
size, a minimum number of floor-labeled records in the window
(crowdsourced labels ride in on the records themselves), a per-building
record-count cooldown, and a wall-clock cooldown on the injected clock so
a quiet building cannot thrash retrains on sparse bursts.  Every decision
— including the refusals — is recorded as a :class:`RetrainReport` for
observability.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import asdict, dataclass

from ..obs.log import log_event
from .drift import DriftEvent
from .executor import RetrainCompletion, RetrainExecutor
from .window import WindowManager

__all__ = ["SchedulerConfig", "RetrainReport", "RetrainScheduler"]

#: How many trailing history entries a checkpoint keeps.  The in-memory
#: history is an operator log and stays unbounded for the process's
#: lifetime, but serialising all of it would make periodic checkpoints of
#: a long-running pipeline grow without bound.
_CHECKPOINT_HISTORY_LIMIT = 256


@dataclass(frozen=True)
class SchedulerConfig:
    """Triggers and guards of the retrain scheduler.

    Attributes
    ----------
    retrain_every_records:
        Optional cadence trigger: retrain a building every N records
        appended to its window, drift or not.  ``None`` disables it.
    min_window_records:
        Refuse to retrain from a window smaller than this.
    min_labeled_records:
        Refuse to retrain unless the window holds at least this many
        floor-labeled records (GRAFICS needs labels to name clusters).
    cooldown_records:
        After a retrain, ignore further triggers for the building until
        this many new records were appended to its window.
    cooldown_seconds:
        After a retrain, ignore further triggers for the building until
        this much wall-clock time (on the scheduler's injected clock) has
        passed.  Complements ``cooldown_records``, which is count-only and
        lets a *quiet* building thrash retrains on sparse bursts.  ``None``
        disables it.
    warm_start:
        Initialise the retrain from the previous model's embeddings for
        surviving nodes (see ``GRAFICS.fit(warm_start=...)``).
    backoff_initial_seconds:
        Wait this long (on the injected clock) before retrying a building
        whose retrain *failed* — distinct from the cooldowns, which pace
        successes.  Doubles per consecutive failure (see
        ``backoff_multiplier``) so a deterministically failing building
        cannot retry-storm the executor.
    backoff_multiplier:
        Exponential growth factor of the failure backoff.
    backoff_max_seconds:
        Ceiling on the failure backoff.
    backoff_jitter:
        Fractional jitter widening each backoff delay by up to this much.
        The draw is seeded from ``(building, attempt)`` so replays of the
        same failure sequence wait the same amounts — chaos runs stay
        byte-reproducible.
    breaker_failures:
        After this many *consecutive* failures the building's circuit
        breaker opens: triggers stay latched but no retrain is attempted
        until the current backoff elapses, at which point a single
        half-open probe retrain runs — success closes the breaker, another
        failure reopens it for the next (longer) backoff.  Serving always
        continues on the last good model.  ``None`` disables the breaker
        (failures still back off).
    """

    retrain_every_records: int | None = None
    min_window_records: int = 32
    min_labeled_records: int = 2
    cooldown_records: int = 0
    cooldown_seconds: float | None = None
    warm_start: bool = True
    backoff_initial_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 120.0
    backoff_jitter: float = 0.1
    breaker_failures: int | None = 3

    def __post_init__(self) -> None:
        if (self.retrain_every_records is not None
                and self.retrain_every_records < 1):
            raise ValueError("retrain_every_records must be positive (or None)")
        if self.min_window_records < 1:
            raise ValueError("min_window_records must be at least 1")
        if self.min_labeled_records < 1:
            raise ValueError("min_labeled_records must be at least 1")
        if self.cooldown_records < 0:
            raise ValueError("cooldown_records must be non-negative")
        if self.cooldown_seconds is not None and self.cooldown_seconds <= 0.0:
            raise ValueError("cooldown_seconds must be positive (or None)")
        if self.backoff_initial_seconds <= 0.0:
            raise ValueError("backoff_initial_seconds must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if self.backoff_max_seconds < self.backoff_initial_seconds:
            raise ValueError(
                "backoff_max_seconds must be >= backoff_initial_seconds")
        if self.backoff_jitter < 0.0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ValueError("breaker_failures must be positive (or None)")


@dataclass(frozen=True)
class RetrainReport:
    """One scheduling decision: a swap, a submitted job or a refused trigger."""

    building_id: str
    trigger: str                 # "drift:<kind>" | "record_count"
    swapped: bool
    submitted: bool = False      # queued on a background executor
    window_records: int = 0
    labeled_records: int = 0
    duration_seconds: float = 0.0
    skipped_reason: str | None = None
    #: Trace the retrain ran under (see ``RetrainCompletion.trace_id``);
    #: lets operators join a swap back to the drift that triggered it.
    trace_id: str | None = None


class RetrainScheduler:
    """Decides when to rebuild a building from its window; delegates the how.

    With the default synchronous executor, :meth:`maybe_retrain` trains and
    swaps inline exactly as before the trigger/execution split.  With a
    background executor, it *submits* the job (returning a report with
    ``submitted=True``) and the completed swap is folded into the history
    by :meth:`collect` — callers drive ``collect()`` from their event loop
    (the pipeline does it every :meth:`~repro.stream.pipeline.
    ContinuousLearningPipeline.process` call).
    """

    def __init__(self, service, windows: WindowManager,
                 config: SchedulerConfig | None = None,
                 clock: Callable[[], float] = time.perf_counter,
                 executor: RetrainExecutor | None = None) -> None:
        self.service = service
        self.windows = windows
        self.config = config or SchedulerConfig()
        self._clock = clock
        self.executor = (executor if executor is not None
                         else RetrainExecutor(service, max_workers=0,
                                              clock=clock))
        self._pending: dict[str, str] = {}       # building -> trigger
        self._inflight: set[str] = set()         # buildings training right now
        self._appended: dict[str, int] = {}      # records since last retrain
        self._last_skip: dict[str, str] = {}     # building -> last skip reason
        self._last_swap_at: dict[str, float] = {}
        self._failures: dict[str, int] = {}      # consecutive failed retrains
        self._retry_at: dict[str, float] = {}    # earliest next attempt
        self._probing: set[str] = set()          # half-open probe in flight
        self.history: list[RetrainReport] = []
        self.retrains_total = 0

    # ---------------------------------------------------------------- signals
    def note_drift(self, event: DriftEvent) -> None:
        """Mark a building for retraining because a drift event targeted it.

        Registry-wide events (``building_id is None``, e.g. rejection-rate
        drift) have no building to retrain; they are surfaced to operators
        through the pipeline's results and stats instead.
        """
        if event.building_id is None:
            return
        self._pending.setdefault(event.building_id,
                                 f"drift:{event.kind.value}")

    def note_append(self, building_id: str) -> None:
        """Count one record appended to a building's window (cadence/cooldown)."""
        self._appended[building_id] = self._appended.get(building_id, 0) + 1
        every = self.config.retrain_every_records
        if (every is not None
                and self._appended[building_id] % every == 0):
            self._pending.setdefault(building_id, "record_count")

    # ----------------------------------------------------------------- action
    def maybe_retrain(self, building_id: str) -> RetrainReport | None:
        """Retrain ``building_id`` if it is due; report what happened.

        Returns ``None`` when nothing was pending, a retrain for the
        building is already in flight, or a cooldown is active.  A pending
        trigger that fails a guard (cooldown, window too small, too few
        labels) *stays pending* — drift events latch in the detector, so
        dropping the trigger here would lose the drift forever even after
        enough data arrived.  The first refusal per distinct reason is
        recorded as a skip report so operators can see why nothing swapped;
        repeats of the same reason return ``None`` instead of flooding the
        history.
        """
        trigger = self._pending.get(building_id)
        if trigger is None:
            return None
        if building_id in self._inflight:
            self._count_skip("inflight")
            return None  # stays pending until the in-flight retrain lands

        retry_at = self._retry_at.get(building_id)
        if retry_at is not None and self._clock() < retry_at:
            # Waiting out a failure backoff — or, past the breaker
            # threshold, waiting for the half-open probe slot.
            self._count_skip("breaker_open"
                             if self.breaker_state(building_id) == "open"
                             else "backoff")
            return None  # stays pending until the backoff elapses

        appended = self._appended.get(building_id, 0)
        if 0 < appended <= self.config.cooldown_records:
            self._count_skip("cooldown")
            return None  # stays pending until the cooldown elapses
        if self.config.cooldown_seconds is not None:
            last_swap = self._last_swap_at.get(building_id)
            if (last_swap is not None and self._clock() - last_swap
                    < self.config.cooldown_seconds):
                self._count_skip("cooldown")
                return None  # stays pending until the cooldown elapses

        window = self.windows.window_for(building_id)
        if len(window) < self.config.min_window_records:
            return self._skip("window", RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                window_records=len(window),
                skipped_reason=f"window holds {len(window)} records, "
                               f"needs {self.config.min_window_records}"))

        labels = {record.record_id: record.floor
                  for record in window.records if record.floor is not None}
        if len(labels) < self.config.min_labeled_records:
            return self._skip("labels", RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                window_records=len(window), labeled_records=len(labels),
                skipped_reason=f"window holds {len(labels)} labeled records, "
                               f"needs {self.config.min_labeled_records}"))

        del self._pending[building_id]
        self._last_skip.pop(building_id, None)
        if self.breaker_state(building_id) == "open":
            # The backoff has elapsed and the guards passed: this attempt
            # is the breaker's single half-open probe.  Flagged only now —
            # a probe blocked by a guard above never left the open state.
            self._probing.add(building_id)
            log_event("retrain_breaker_half_open", building_id=building_id,
                      failures=self._failures.get(building_id, 0),
                      trigger=trigger)
        try:
            completion = self.executor.submit(
                building_id=building_id,
                dataset=window.as_dataset(building_id), labels=labels,
                trigger=trigger, warm_start=self.config.warm_start,
                window_records=len(window), labeled_records=len(labels))
        except Exception as error:  # noqa: BLE001 — the stream must survive
            # Synchronous executors run the fit right here; a failed fit
            # must not kill the ingest loop, and — the drift being latched
            # in the detector — must re-pend the trigger so the retrain is
            # retried, exactly like the async failure path in _absorb.
            self._pending.setdefault(building_id, trigger)
            self._note_failure(building_id)
            report = RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                window_records=len(window), labeled_records=len(labels),
                skipped_reason=f"retrain failed: {error}")
            self.history.append(report)
            return report
        if completion is None:
            self._inflight.add(building_id)
            return RetrainReport(
                building_id=building_id, trigger=trigger, swapped=False,
                submitted=True, window_records=len(window),
                labeled_records=len(labels))
        return self._absorb(completion)

    def collect(self) -> list[RetrainReport]:
        """Fold background completions into counters/history; report them."""
        return [self._absorb(completion)
                for completion in self.executor.drain_completed()]

    def _absorb(self, completion: RetrainCompletion) -> RetrainReport:
        """Turn one executor completion into bookkeeping plus a report."""
        building_id = completion.building_id
        self._inflight.discard(building_id)
        if completion.swapped:
            self._appended[building_id] = 0
            self._last_swap_at[building_id] = self._clock()
            self.retrains_total += 1
            self._note_success(building_id)
            report = RetrainReport(
                building_id=building_id, trigger=completion.trigger,
                swapped=True, window_records=completion.window_records,
                labeled_records=completion.labeled_records,
                duration_seconds=completion.duration_seconds,
                trace_id=completion.trace_id)
        else:
            if completion.stale:
                reason = (f"result of generation {completion.generation} "
                          "superseded by a newer install")
                # A fenced-out probe proves nothing about the fit path —
                # someone else installed a newer model while it ran.  Drop
                # the probe flag without counting a failure; the breaker
                # stays open and the next elapsed backoff probes again.
                self._probing.discard(building_id)
            else:
                reason = f"retrain failed: {completion.error}"
                # The drift is still latched in the detector and would never
                # re-fire; keep the trigger pending so the retrain is retried
                # once the next record arrives.
                self._pending.setdefault(building_id, completion.trigger)
                self._note_failure(building_id)
            report = RetrainReport(
                building_id=building_id, trigger=completion.trigger,
                swapped=False, window_records=completion.window_records,
                labeled_records=completion.labeled_records,
                duration_seconds=completion.duration_seconds,
                skipped_reason=reason, trace_id=completion.trace_id)
        self.history.append(report)
        return report

    def _skip(self, guard: str,
              report: RetrainReport) -> RetrainReport | None:
        """Record one skip per guard transition; the trigger stays pending."""
        self._count_skip(guard)
        if self._last_skip.get(report.building_id) == guard:
            return None
        self._last_skip[report.building_id] = guard
        self.history.append(report)
        return report

    # -------------------------------------------------------- failure domain
    def breaker_state(self, building_id: str) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"`` for the building.

        Closed is the healthy default (consecutive failures under the
        threshold); open means triggers are latched but attempts are held
        back; half-open means the single probe retrain is in flight (or,
        with a synchronous executor, being decided right now).
        """
        threshold = self.config.breaker_failures
        if (threshold is None
                or self._failures.get(building_id, 0) < threshold):
            return "closed"
        return "half_open" if building_id in self._probing else "open"

    def consecutive_failures(self, building_id: str) -> int:
        """Consecutive failed retrains since the building's last success."""
        return self._failures.get(building_id, 0)

    def retry_in(self, building_id: str,
                 now: float | None = None) -> float | None:
        """Seconds until the building's next allowed attempt, or ``None``."""
        retry_at = self._retry_at.get(building_id)
        if retry_at is None:
            return None
        now = self._clock() if now is None else now
        return max(0.0, retry_at - now)

    def _backoff_delay(self, building_id: str, failures: int) -> float:
        config = self.config
        delay = min(config.backoff_initial_seconds
                    * config.backoff_multiplier ** (failures - 1),
                    config.backoff_max_seconds)
        # Seeded per (building, attempt): replays of the same failure
        # sequence wait identical amounts, yet a fleet of failing
        # buildings still de-synchronises its retries.
        jitter = random.Random(f"{building_id}:{failures}").random()
        return delay * (1.0 + config.backoff_jitter * jitter)

    def _note_failure(self, building_id: str) -> None:
        was_open = self.breaker_state(building_id) == "open"
        self._probing.discard(building_id)
        failures = self._failures.get(building_id, 0) + 1
        self._failures[building_id] = failures
        delay = self._backoff_delay(building_id, failures)
        self._retry_at[building_id] = self._clock() + delay
        threshold = self.config.breaker_failures
        if (threshold is not None and failures >= threshold
                and not was_open):
            log_event("retrain_breaker_opened", building_id=building_id,
                      failures=failures, retry_in_seconds=delay)
        self._update_fault_gauges()

    def _note_success(self, building_id: str) -> None:
        self._probing.discard(building_id)
        failures = self._failures.pop(building_id, 0)
        self._retry_at.pop(building_id, None)
        threshold = self.config.breaker_failures
        if threshold is not None and failures >= threshold:
            log_event("retrain_breaker_closed", building_id=building_id,
                      after_failures=failures)
        self._update_fault_gauges()

    def _count_skip(self, reason: str) -> None:
        telemetry = getattr(self.service, "telemetry", None)
        if telemetry is not None:
            telemetry.increment(f"retrain_skipped_{reason}_total")

    def _update_fault_gauges(self) -> None:
        telemetry = getattr(self.service, "telemetry", None)
        if telemetry is None:
            return
        threshold = self.config.breaker_failures
        open_breakers = sum(
            1 for building_id, failures in self._failures.items()
            if threshold is not None and failures >= threshold
            and building_id not in self._probing)
        backing_off = sum(
            1 for failures in self._failures.values()
            if 0 < failures and (threshold is None or failures < threshold))
        telemetry.set_gauge("retrain_breaker_open", open_breakers)
        telemetry.set_gauge("retrain_backoff_waiting", backing_off)

    # ------------------------------------------------------------- checkpoint
    def state_dict(self, now: float | None = None) -> dict:
        """Triggers, counters and history as a checkpoint payload.

        In-flight background retrains cannot be serialised — the caller
        (the pipeline's ``checkpoint``) must land them first by joining the
        executor and calling :meth:`collect`.  Wall-clock cooldown anchors
        are stored as ages so they survive a clock restart.  Only the last
        ``_CHECKPOINT_HISTORY_LIMIT`` history entries are kept: everything
        the replay semantics depend on lives in the trigger/counter state,
        the history is an operator log, and serialising all of it would
        grow every checkpoint of a long-running pipeline without bound.
        """
        if self._inflight:
            raise RuntimeError(
                f"cannot checkpoint with retrains in flight for "
                f"{sorted(self._inflight)}; join the executor and collect() "
                "first")
        now = self._clock() if now is None else now
        return {
            "pending": dict(self._pending),
            "appended": dict(self._appended),
            "last_skip": dict(self._last_skip),
            "last_swap_ages": {building_id: now - swapped_at
                               for building_id, swapped_at
                               in self._last_swap_at.items()},
            "failures": dict(self._failures),
            # Stored as remaining waits, not absolute deadlines, so the
            # backoff survives a clock restart the same way swap ages do.
            "retry_in": {building_id: max(0.0, retry_at - now)
                         for building_id, retry_at
                         in self._retry_at.items()},
            "retrains_total": self.retrains_total,
            "history": [asdict(report) for report
                        in self.history[-_CHECKPOINT_HISTORY_LIMIT:]],
        }

    def restore_state(self, state: dict, now: float | None = None) -> None:
        """Rebuild triggers, counters and history from a checkpoint payload."""
        now = self._clock() if now is None else now
        self._pending = {str(building_id): str(trigger)
                         for building_id, trigger in state["pending"].items()}
        self._appended = {str(building_id): int(count)
                          for building_id, count in state["appended"].items()}
        self._last_skip = {str(building_id): str(guard)
                           for building_id, guard
                           in state["last_skip"].items()}
        self._last_swap_at = {building_id: now - float(age)
                              for building_id, age
                              in state["last_swap_ages"].items()}
        # ``.get``: checkpoints written before the failure-domain layer
        # existed have no backoff/breaker keys and load with clean state.
        self._failures = {str(building_id): int(count)
                          for building_id, count
                          in state.get("failures", {}).items()}
        self._retry_at = {str(building_id): now + float(remaining)
                          for building_id, remaining
                          in state.get("retry_in", {}).items()}
        # Probes never serialise: state_dict refuses in-flight retrains, so
        # by checkpoint time every probe has landed as success or failure.
        self._probing = set()
        self.retrains_total = int(state["retrains_total"])
        self.history = [RetrainReport(**blob) for blob in state["history"]]
        self._update_fault_gauges()

    # ------------------------------------------------------------------ state
    @property
    def pending(self) -> dict[str, str]:
        return dict(self._pending)

    @property
    def inflight(self) -> frozenset[str]:
        """Buildings whose retrain is currently running on the executor."""
        return frozenset(self._inflight)

    def last_swap_age(self, building_id: str,
                      now: float | None = None) -> float | None:
        """Seconds since the building's last hot swap, or ``None`` if never.

        Measured on the scheduler's injected clock; health consumers use it
        to flag drift-latched buildings whose retrain is overdue.
        """
        swapped_at = self._last_swap_at.get(building_id)
        if swapped_at is None:
            return None
        now = self._clock() if now is None else now
        return now - swapped_at

    def stats(self) -> dict[str, object]:
        swapped = [r for r in self.history if r.swapped]
        return {
            "retrains_total": self.retrains_total,
            "skipped_total": sum(r.skipped_reason is not None
                                 for r in self.history),
            "pending": dict(self._pending),
            "inflight": sorted(self._inflight),
            "failures": dict(self._failures),
            "breakers_open": sorted(
                building_id for building_id in self._failures
                if self.breaker_state(building_id) != "closed"),
            "last_retrain": (swapped[-1].building_id if swapped else None),
            "executor": self.executor.stats(),
        }
