"""The continuous-learning façade: ingest → window → drift → retrain → swap.

:class:`ContinuousLearningPipeline` closes the loop the offline pipeline
leaves open: crowdsourced records flow in continuously, are quality
filtered and attributed to buildings, kept in bounded sliding-window
graphs, watched for drift, and — when a building drifts or a retrain
cadence fires — its model is rebuilt from the window off to the side and
atomically hot-swapped into the serving stack, cache and router included.

One synchronous :meth:`process` call advances the whole machine by one
record and reports everything that happened (prediction, evictions, drift
events, retrain outcome), which keeps the subsystem deterministic and
trivially drivable from tests, benchmarks, or an outer event loop feeding
it from :func:`repro.data.iter_jsonl` replay or a network intake.
"""

from __future__ import annotations

import os
import shutil
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..core.embedding.kernels import validate_kernel
from ..core.embedding.sampler import validate_sampler_mode
from ..core.inference import UnknownEnvironmentError
from ..core.persistence import (
    CheckpointCorruptError,
    grafics_config_from_payload,
    grafics_config_to_payload,
    load_registry,
    load_stream_state,
    save_registry,
    save_stream_state,
)
from ..core.registry import BuildingPrediction
from ..core.types import SignalRecord
from ..obs import runtime as obs
from ..obs.log import log_event
from ..serving.service import FloorServingService, ServingConfig
from ..serving.sharding import ShardedServingService
from .drift import DriftConfig, DriftDetector, DriftEvent, DriftKind
from .executor import RetrainExecutor
from .filters import QualityFilter, default_filters
from .ingest import StreamIngestor
from .scheduler import RetrainReport, RetrainScheduler, SchedulerConfig
from .window import WindowConfig, WindowEviction, WindowManager

#: File names inside a checkpoint directory.
_CHECKPOINT_STATE_FILE = "stream_state.json"
_CHECKPOINT_REGISTRY_DIR = "registry"
#: Where the previous checkpoint generation is retained.  Rotated in
#: before each new checkpoint is written; ``resume()`` falls back to it
#: wholesale (state + registry together — mixing generations would pair a
#: registry with scheduler counters it never saw) when the current
#: generation is missing or corrupt.
_CHECKPOINT_PREVIOUS_DIR = "previous"

__all__ = ["StreamConfig", "StreamResult", "ContinuousLearningPipeline"]


@dataclass(frozen=True)
class StreamConfig:
    """Tunables of the whole continuous-learning pipeline."""

    window: WindowConfig = field(default_factory=WindowConfig)
    drift: DriftConfig = field(default_factory=DriftConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    buffer_capacity: int = 1024
    #: Predict each admitted record through the serving stack (feeds the
    #: distance-shift detector and returns the prediction to the caller).
    #: Disable for pure ingestion workloads that only maintain windows.
    predict: bool = True
    #: Worker threads for background retrains.  ``0`` (the default) trains
    #: synchronously inside :meth:`ContinuousLearningPipeline.process`;
    #: ``>= 1`` moves ``GRAFICS`` fits onto a
    #: :class:`~repro.stream.executor.RetrainExecutor` pool, so a drifted
    #: building's retrain no longer stalls the ingest loop — the swap lands
    #: a few ``process`` calls later via ``StreamResult.completed_retrains``.
    retrain_workers: int = 0
    #: Training kernel for stream retrains (``"reference"``/``"fused"``; see
    #: :mod:`repro.core.embedding.kernels`).  ``None`` (the default) keeps
    #: the service's configured kernel and its byte-identity guarantees;
    #: ``"fused"`` roughly halves retrain time, shrinking hot-swap latency
    #: and retrain-worker occupancy at tolerance-level embedding differences.
    retrain_kernel: str | None = None
    #: Cold-path negative-sampler mode recorded on stream-retrained models
    #: (``"exact"``/``"delta"``; see
    #: :class:`~repro.core.embedding.base.EmbeddingConfig`).  ``None`` (the
    #: default) keeps the service's configured mode; ``"delta"`` makes every
    #: hot-swapped model serve its cold predictions off the composed delta
    #: sampler instead of per-predict O(V) alias rebuilds.
    retrain_sampler_mode: str | None = None
    #: Wall budget for one stream retrain fit (see
    #: :class:`~repro.stream.executor.RetrainExecutor`
    #: ``fit_deadline_seconds``): an overrunning fit's result is abandoned
    #: under the generation fence and surfaces as a failed retrain, feeding
    #: the scheduler's backoff/breaker.  ``None`` disables the budget.
    retrain_deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.retrain_workers < 0:
            raise ValueError("retrain_workers must be non-negative")
        if self.retrain_kernel is not None:
            # Fail at construction, not at the first retrain deep inside the
            # stream loop (where a background worker would just surface error
            # completions and models would silently stop updating).
            validate_kernel(self.retrain_kernel)
        if self.retrain_sampler_mode is not None:
            validate_sampler_mode(self.retrain_sampler_mode)
        if (self.retrain_deadline_seconds is not None
                and self.retrain_deadline_seconds <= 0.0):
            raise ValueError(
                "retrain_deadline_seconds must be positive (or None)")


@dataclass(frozen=True)
class StreamResult:
    """Everything one :meth:`ContinuousLearningPipeline.process` call did."""

    record_id: str
    accepted: bool
    building_id: str | None = None
    rejected_by: str | None = None
    reason: str | None = None
    prediction: BuildingPrediction | None = None
    eviction: WindowEviction = field(default_factory=WindowEviction)
    drift_events: tuple[DriftEvent, ...] = ()
    retrain: RetrainReport | None = None
    #: Background retrains (possibly of *other* buildings) whose swap landed
    #: during this call — always empty with synchronous retrains.
    completed_retrains: tuple[RetrainReport, ...] = ()

    @property
    def swapped(self) -> bool:
        return ((self.retrain is not None and self.retrain.swapped)
                or any(report.swapped for report in self.completed_retrains))


class ContinuousLearningPipeline:
    """Drives a :class:`FloorServingService` from a live record stream."""

    def __init__(self, service: FloorServingService,
                 config: StreamConfig | None = None,
                 filters: list[QualityFilter] | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self.service = service
        self.config = config or StreamConfig()
        self.ingestor = StreamIngestor(
            attribute=lambda record: service.router.route(record).building_id,
            filters=filters if filters is not None else default_filters(),
            buffer_capacity=self.config.buffer_capacity)
        self.windows = WindowManager(config=self.config.window)
        self.drift = DriftDetector(self.config.drift)
        # One injected clock drives the executor's durations and the
        # scheduler's wall-clock cooldowns/swap ages, so tests (and health
        # monitors sharing the clock) see consistent time everywhere.
        clock_kwargs = {} if clock is None else {"clock": clock}
        self.executor = RetrainExecutor(
            service, max_workers=self.config.retrain_workers,
            kernel=self.config.retrain_kernel,
            sampler_mode=self.config.retrain_sampler_mode,
            fit_deadline_seconds=self.config.retrain_deadline_seconds,
            **clock_kwargs)
        self.scheduler = RetrainScheduler(service, self.windows,
                                          self.config.scheduler,
                                          executor=self.executor,
                                          **clock_kwargs)
        self.drift_events: list[DriftEvent] = []
        self.processed_total = 0

    # ------------------------------------------------------------------ drive
    def process(self, record: SignalRecord,
                building_id: str | None = None) -> StreamResult:
        """Advance the pipeline by one record; never raises on stream input."""
        with obs.span("stream.process") as process_span:
            result = self._process(record, building_id)
            process_span.set("record", record.record_id)
            process_span.set("accepted", result.accepted)
            if result.swapped:
                process_span.set("swapped", True)
            return result

    def _process(self, record: SignalRecord,
                 building_id: str | None = None) -> StreamResult:
        self.processed_total += 1
        telemetry = self.service.telemetry
        telemetry.increment("stream_records_total")

        completed = self._collect_completed()
        decision = self.ingestor.submit(record, building_id=building_id)
        events: list[DriftEvent] = []
        if not decision.accepted:
            telemetry.increment(f"stream_rejected_{decision.filter_name}_total")
            if decision.filter_name == "router":
                self._note(events, self.drift.observe_routing(False))
            self._finish(events)
            return StreamResult(record_id=record.record_id, accepted=False,
                                rejected_by=decision.filter_name,
                                reason=decision.reason,
                                drift_events=tuple(events),
                                completed_retrains=completed)

        telemetry.increment("stream_accepted_total")
        self._note(events, self.drift.observe_routing(True))
        building = decision.building_id
        window = self.windows.window_for(building)
        prediction: BuildingPrediction | None = None
        eviction = WindowEviction()
        for buffered in self.ingestor.drain(building):
            if window.has_record(buffered.record_id):
                # A client retry (same id, fresh scan) slipping past the
                # fingerprint dedup must not crash the stream; count it.
                telemetry.increment("stream_rejected_duplicate_id_total")
                if buffered.record_id == record.record_id:
                    self._finish(events)
                    return StreamResult(
                        record_id=record.record_id, accepted=False,
                        building_id=building, rejected_by="window",
                        reason=f"record {record.record_id!r} is already in "
                               f"the window of building {building!r}",
                        drift_events=tuple(events),
                        completed_retrains=completed)
                continue
            if self.config.predict:
                prediction = self._predict(buffered)
                if prediction is not None:
                    self._note(events, self.drift.observe_distance(
                        building, prediction.distance))
            eviction = self.windows.append(building, buffered)
            self.scheduler.note_append(building)

        if len(window) >= self.config.drift.vocabulary_warmup_records:
            try:
                trained = self.service.vocabulary_for(building)
            except KeyError:
                # Explicit building_id for a building with no model yet: the
                # window accumulates toward a bootstrap retrain, and there is
                # no trained vocabulary to drift from.
                trained = None
            if trained is not None:
                self._note(events, self.drift.check_vocabulary(
                    building, trained, window.mac_vocabulary))

        for event in events:
            self.scheduler.note_drift(event)
        retrain = self.scheduler.maybe_retrain(building)
        if retrain is not None and retrain.swapped:
            self.drift.reset_building(building)
            telemetry.increment("stream_retrains_total")
        completed = completed + self._collect_completed()

        self._finish(events)
        return StreamResult(record_id=record.record_id, accepted=True,
                            building_id=building, prediction=prediction,
                            eviction=eviction, drift_events=tuple(events),
                            retrain=retrain, completed_retrains=completed)

    def process_stream(self, records: Iterable[SignalRecord],
                       building_id: str | None = None) -> list[StreamResult]:
        """Process many records; returns one result per record, in order."""
        return [self.process(record, building_id=building_id)
                for record in records]

    # ---------------------------------------------------------------- helpers
    def _collect_completed(self) -> tuple[RetrainReport, ...]:
        """Fold finished background retrains into drift state and telemetry.

        Synchronous pipelines (``retrain_workers=0``) never have anything to
        collect — the inline path in :meth:`process` already did this work.
        """
        completed = tuple(self.scheduler.collect())
        for report in completed:
            if report.swapped:
                self.drift.reset_building(report.building_id)
                self.service.telemetry.increment("stream_retrains_total")
        return completed

    def close(self) -> tuple[RetrainReport, ...]:
        """Wait for in-flight retrains, land their swaps, release the pool.

        Returns the reports of whatever completed during the wait.  Safe to
        call on a synchronous pipeline (it is a no-op there) and more than
        once.
        """
        self.executor.join()
        completed = self._collect_completed()
        self.executor.shutdown()
        return completed

    def _predict(self, record: SignalRecord) -> BuildingPrediction | None:
        try:
            return self.service.predict(record)
        except UnknownEnvironmentError:
            # The ingest-time routing decision can go stale if a hot swap
            # shrank the vocabulary between attribution and prediction.
            return None
        except (ValueError, KeyError, RuntimeError):
            # A failed prediction (id collision with a model's training
            # records after a swap, a building installed with no model, ...)
            # must not kill the stream; the record still feeds the window.
            self.service.telemetry.increment("stream_predict_errors_total")
            return None

    @staticmethod
    def _note(events: list[DriftEvent], event: DriftEvent | None) -> None:
        if event is not None:
            events.append(event)

    def _finish(self, events: list[DriftEvent]) -> None:
        telemetry = self.service.telemetry
        for event in events:
            telemetry.increment("drift_events_total")
            telemetry.increment(f"drift_{event.kind.value}_total")
        self.drift_events.extend(events)
        telemetry.set_gauge("stream_window_records", self.windows.total_records)
        telemetry.set_gauge("stream_window_nodes", self.windows.total_nodes)
        telemetry.set_gauge("stream_buffered_records",
                            self.ingestor.buffered_count)

    # -------------------------------------------------------------- checkpoint
    def checkpoint(self, directory: str | Path) -> Path:
        """Write a restartable snapshot of the whole continuous-learning state.

        The checkpoint directory holds two things: ``registry/`` — every
        building's model plus the attribution manifest, via
        :func:`repro.core.persistence.save_registry` — and
        ``stream_state.json`` — windows (records + arrival ages), drift
        baselines and latches, scheduler triggers/counters/history, ingest
        buffers and filter state, via :func:`save_stream_state`.  In-flight
        background retrains are joined and their swaps landed first, so the
        saved models and the saved scheduler state are consistent.  A
        pipeline resumed from the result replays the rest of the stream
        exactly as the uninterrupted pipeline would (test-enforced).

        Checkpointing into a directory that already holds one rotates the
        existing generation into ``previous/`` first, so a write that is
        torn or killed partway always leaves one complete last-good
        checkpoint for :meth:`resume` to fall back to.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.executor.join()
        self._collect_completed()
        self._rotate_previous(directory)
        save_registry(self.service.export_registry(),
                      directory / _CHECKPOINT_REGISTRY_DIR)
        save_stream_state(self.state_dict(),
                          directory / _CHECKPOINT_STATE_FILE)
        log_event("checkpoint_written", path=str(directory),
                  processed_total=self.processed_total,
                  buildings=len(self.service.building_ids))
        return directory

    @staticmethod
    def _rotate_previous(directory: Path) -> None:
        """Move the current checkpoint generation into ``previous/``.

        State file and registry rotate together — the fallback pair must be
        from one generation.  The old ``previous/`` is dropped first; two
        retained generations bound the disk cost, and anything older is by
        definition two successful checkpoints stale.
        """
        state_file = directory / _CHECKPOINT_STATE_FILE
        if not state_file.exists():
            return
        previous = directory / _CHECKPOINT_PREVIOUS_DIR
        if previous.exists():
            shutil.rmtree(previous)
        previous.mkdir()
        os.replace(state_file, previous / _CHECKPOINT_STATE_FILE)
        registry_dir = directory / _CHECKPOINT_REGISTRY_DIR
        if registry_dir.exists():
            os.replace(registry_dir, previous / _CHECKPOINT_REGISTRY_DIR)

    @classmethod
    def resume(cls, directory: str | Path,
               service: FloorServingService | ShardedServingService | None = None,
               config: StreamConfig | None = None,
               filters: list[QualityFilter] | None = None,
               ) -> "ContinuousLearningPipeline":
        """Rebuild a pipeline from a :meth:`checkpoint` directory.

        With no arguments the serving stack is reconstructed exactly as
        checkpointed: the registry is loaded from disk, the serving façade
        (one-lock or sharded, with its original configuration) is rebuilt
        around it, and the stream configuration is restored from the
        checkpoint.  Pass ``service``/``config``/``filters`` to override —
        the filter chain must keep the checkpointed stage order, since the
        dedup filter's memory is part of the replay semantics.

        When the current checkpoint generation is corrupt (failed digest,
        torn write) or partially missing, and the directory retains a
        ``previous/`` generation, resume falls back to it wholesale and
        emits a structured ``checkpoint_recovered`` event.  A directory
        with neither raises as before.
        """
        directory = Path(directory)
        try:
            return cls._resume_from(directory, service=service,
                                    config=config, filters=filters)
        except (FileNotFoundError, CheckpointCorruptError) as error:
            previous = directory / _CHECKPOINT_PREVIOUS_DIR
            if not (previous / _CHECKPOINT_STATE_FILE).is_file():
                raise
            log_event("checkpoint_recovered", path=str(directory),
                      fallback=str(previous),
                      error_type=type(error).__name__, error=str(error))
            return cls._resume_from(previous, service=service,
                                    config=config, filters=filters)

    @classmethod
    def _resume_from(cls, directory: Path,
                     service: FloorServingService | ShardedServingService | None = None,
                     config: StreamConfig | None = None,
                     filters: list[QualityFilter] | None = None,
                     ) -> "ContinuousLearningPipeline":
        state = load_stream_state(directory / _CHECKPOINT_STATE_FILE)
        if config is None:
            config = _stream_config_from_payload(state["stream_config"])
        if service is None:
            descriptor = state["service"]
            registry = load_registry(
                directory / _CHECKPOINT_REGISTRY_DIR,
                config=grafics_config_from_payload(
                    descriptor["grafics_config"]))
            serving_config = ServingConfig(**descriptor["serving_config"])
            if descriptor["kind"] == "sharded":
                service = ShardedServingService(
                    registry=registry, config=serving_config,
                    num_shards=int(descriptor["num_shards"]))
            else:
                service = FloorServingService(registry=registry,
                                              config=serving_config)
        pipeline = cls(service, config, filters=filters)
        pipeline.restore_state(state)
        log_event("checkpoint_resumed", path=str(directory),
                  processed_total=pipeline.processed_total,
                  buildings=len(service.building_ids))
        return pipeline

    def state_dict(self) -> dict:
        """Every stage's live state as one JSON-serialisable payload."""
        if self.executor.pending_count:
            raise RuntimeError("cannot checkpoint with retrains in flight; "
                               "join the executor first")
        return {
            "processed_total": self.processed_total,
            "drift_events": [
                {"kind": event.kind.value, "building_id": event.building_id,
                 "value": event.value, "threshold": event.threshold,
                 "detail": event.detail, "trace_id": event.trace_id}
                for event in self.drift_events],
            "ingest": self.ingestor.state_dict(),
            "windows": self.windows.state_dict(),
            "drift": self.drift.state_dict(),
            "scheduler": self.scheduler.state_dict(),
            "stream_config": asdict(self.config),
            "service": _service_descriptor(self.service),
        }

    def restore_state(self, state: dict) -> None:
        """Restore every stage from a :meth:`state_dict` payload."""
        self.processed_total = int(state["processed_total"])
        self.drift_events = [
            DriftEvent(kind=DriftKind(blob["kind"]),
                       building_id=blob["building_id"],
                       value=float(blob["value"]),
                       threshold=float(blob["threshold"]),
                       detail=str(blob["detail"]),
                       # Absent in checkpoints written before trace stamping.
                       trace_id=blob.get("trace_id"))
            for blob in state["drift_events"]]
        self.ingestor.restore_state(state["ingest"])
        self.windows.restore_state(state["windows"])
        self.drift.restore_state(state["drift"])
        self.scheduler.restore_state(state["scheduler"])

    # ---------------------------------------------------------- observability
    def stats(self) -> dict[str, object]:
        """One nested dict describing every stage (for logs and dashboards)."""
        return {
            "processed": self.processed_total,
            "ingest": self.ingestor.stats(),
            "windows": self.windows.stats(),
            "drift": self.drift.stats(),
            "scheduler": self.scheduler.stats(),
        }


def _service_descriptor(service) -> dict:
    """How to rebuild the serving façade around a reloaded registry.

    The GRAFICS configuration is part of the descriptor because the loaded
    per-building models carry their *own* training configs — but retrains on
    the resumed node build fresh models from the service-level config, which
    must therefore survive the round trip for resumed retrains to produce
    the same models an uninterrupted node would.
    """
    descriptor = {
        "kind": ("sharded" if isinstance(service, ShardedServingService)
                 else "single"),
        "serving_config": asdict(service.config),
        "grafics_config": grafics_config_to_payload(service.grafics_config),
    }
    if descriptor["kind"] == "sharded":
        descriptor["num_shards"] = service.num_shards
    return descriptor


def _stream_config_from_payload(payload: dict) -> StreamConfig:
    """Rebuild a :class:`StreamConfig` from its ``dataclasses.asdict`` form."""
    return StreamConfig(
        window=WindowConfig(**payload["window"]),
        drift=DriftConfig(**payload["drift"]),
        scheduler=SchedulerConfig(**payload["scheduler"]),
        buffer_capacity=int(payload["buffer_capacity"]),
        predict=bool(payload["predict"]),
        retrain_workers=int(payload["retrain_workers"]),
        # Absent in checkpoints written before the kernel / delta-sampler /
        # failure-domain layers existed; ``.get`` keeps old checkpoints
        # loadable.
        retrain_kernel=payload.get("retrain_kernel"),
        retrain_sampler_mode=payload.get("retrain_sampler_mode"),
        retrain_deadline_seconds=payload.get("retrain_deadline_seconds"),
    )
