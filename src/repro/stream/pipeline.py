"""The continuous-learning façade: ingest → window → drift → retrain → swap.

:class:`ContinuousLearningPipeline` closes the loop the offline pipeline
leaves open: crowdsourced records flow in continuously, are quality
filtered and attributed to buildings, kept in bounded sliding-window
graphs, watched for drift, and — when a building drifts or a retrain
cadence fires — its model is rebuilt from the window off to the side and
atomically hot-swapped into the serving stack, cache and router included.

One synchronous :meth:`process` call advances the whole machine by one
record and reports everything that happened (prediction, evictions, drift
events, retrain outcome), which keeps the subsystem deterministic and
trivially drivable from tests, benchmarks, or an outer event loop feeding
it from :func:`repro.data.iter_jsonl` replay or a network intake.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core.inference import UnknownEnvironmentError
from ..core.registry import BuildingPrediction
from ..core.types import SignalRecord
from ..serving.service import FloorServingService
from .drift import DriftConfig, DriftDetector, DriftEvent
from .filters import QualityFilter, default_filters
from .ingest import StreamIngestor
from .scheduler import RetrainReport, RetrainScheduler, SchedulerConfig
from .window import WindowConfig, WindowEviction, WindowManager

__all__ = ["StreamConfig", "StreamResult", "ContinuousLearningPipeline"]


@dataclass(frozen=True)
class StreamConfig:
    """Tunables of the whole continuous-learning pipeline."""

    window: WindowConfig = field(default_factory=WindowConfig)
    drift: DriftConfig = field(default_factory=DriftConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    buffer_capacity: int = 1024
    #: Predict each admitted record through the serving stack (feeds the
    #: distance-shift detector and returns the prediction to the caller).
    #: Disable for pure ingestion workloads that only maintain windows.
    predict: bool = True


@dataclass(frozen=True)
class StreamResult:
    """Everything one :meth:`ContinuousLearningPipeline.process` call did."""

    record_id: str
    accepted: bool
    building_id: str | None = None
    rejected_by: str | None = None
    reason: str | None = None
    prediction: BuildingPrediction | None = None
    eviction: WindowEviction = field(default_factory=WindowEviction)
    drift_events: tuple[DriftEvent, ...] = ()
    retrain: RetrainReport | None = None

    @property
    def swapped(self) -> bool:
        return self.retrain is not None and self.retrain.swapped


class ContinuousLearningPipeline:
    """Drives a :class:`FloorServingService` from a live record stream."""

    def __init__(self, service: FloorServingService,
                 config: StreamConfig | None = None,
                 filters: list[QualityFilter] | None = None) -> None:
        self.service = service
        self.config = config or StreamConfig()
        self.ingestor = StreamIngestor(
            attribute=lambda record: service.router.route(record).building_id,
            filters=filters if filters is not None else default_filters(),
            buffer_capacity=self.config.buffer_capacity)
        self.windows = WindowManager(config=self.config.window)
        self.drift = DriftDetector(self.config.drift)
        self.scheduler = RetrainScheduler(service, self.windows,
                                          self.config.scheduler)
        self.drift_events: list[DriftEvent] = []
        self.processed_total = 0

    # ------------------------------------------------------------------ drive
    def process(self, record: SignalRecord,
                building_id: str | None = None) -> StreamResult:
        """Advance the pipeline by one record; never raises on stream input."""
        self.processed_total += 1
        telemetry = self.service.telemetry
        telemetry.increment("stream_records_total")

        decision = self.ingestor.submit(record, building_id=building_id)
        events: list[DriftEvent] = []
        if not decision.accepted:
            telemetry.increment(f"stream_rejected_{decision.filter_name}_total")
            if decision.filter_name == "router":
                self._note(events, self.drift.observe_routing(False))
            self._finish(events)
            return StreamResult(record_id=record.record_id, accepted=False,
                                rejected_by=decision.filter_name,
                                reason=decision.reason,
                                drift_events=tuple(events))

        telemetry.increment("stream_accepted_total")
        self._note(events, self.drift.observe_routing(True))
        building = decision.building_id
        window = self.windows.window_for(building)
        prediction: BuildingPrediction | None = None
        eviction = WindowEviction()
        for buffered in self.ingestor.drain(building):
            if window.has_record(buffered.record_id):
                # A client retry (same id, fresh scan) slipping past the
                # fingerprint dedup must not crash the stream; count it.
                telemetry.increment("stream_rejected_duplicate_id_total")
                if buffered.record_id == record.record_id:
                    self._finish(events)
                    return StreamResult(
                        record_id=record.record_id, accepted=False,
                        building_id=building, rejected_by="window",
                        reason=f"record {record.record_id!r} is already in "
                               f"the window of building {building!r}",
                        drift_events=tuple(events))
                continue
            if self.config.predict:
                prediction = self._predict(buffered)
                if prediction is not None:
                    self._note(events, self.drift.observe_distance(
                        building, prediction.distance))
            eviction = self.windows.append(building, buffered)
            self.scheduler.note_append(building)

        if len(window) >= self.config.drift.vocabulary_warmup_records:
            try:
                trained = self.service.registry.vocabulary_for(building)
            except KeyError:
                # Explicit building_id for a building with no model yet: the
                # window accumulates toward a bootstrap retrain, and there is
                # no trained vocabulary to drift from.
                trained = None
            if trained is not None:
                self._note(events, self.drift.check_vocabulary(
                    building, trained, window.mac_vocabulary))

        for event in events:
            self.scheduler.note_drift(event)
        retrain = self.scheduler.maybe_retrain(building)
        if retrain is not None and retrain.swapped:
            self.drift.reset_building(building)
            telemetry.increment("stream_retrains_total")

        self._finish(events)
        return StreamResult(record_id=record.record_id, accepted=True,
                            building_id=building, prediction=prediction,
                            eviction=eviction, drift_events=tuple(events),
                            retrain=retrain)

    def process_stream(self, records: Iterable[SignalRecord],
                       building_id: str | None = None) -> list[StreamResult]:
        """Process many records; returns one result per record, in order."""
        return [self.process(record, building_id=building_id)
                for record in records]

    # ---------------------------------------------------------------- helpers
    def _predict(self, record: SignalRecord) -> BuildingPrediction | None:
        try:
            return self.service.predict(record)
        except UnknownEnvironmentError:
            # The ingest-time routing decision can go stale if a hot swap
            # shrank the vocabulary between attribution and prediction.
            return None
        except (ValueError, KeyError, RuntimeError):
            # A failed prediction (id collision with a model's training
            # records after a swap, a building installed with no model, ...)
            # must not kill the stream; the record still feeds the window.
            self.service.telemetry.increment("stream_predict_errors_total")
            return None

    @staticmethod
    def _note(events: list[DriftEvent], event: DriftEvent | None) -> None:
        if event is not None:
            events.append(event)

    def _finish(self, events: list[DriftEvent]) -> None:
        telemetry = self.service.telemetry
        for event in events:
            telemetry.increment("drift_events_total")
            telemetry.increment(f"drift_{event.kind.value}_total")
        self.drift_events.extend(events)
        telemetry.set_gauge("stream_window_records", self.windows.total_records)
        telemetry.set_gauge("stream_window_nodes", self.windows.total_nodes)
        telemetry.set_gauge("stream_buffered_records",
                            self.ingestor.buffered_count)

    # ---------------------------------------------------------- observability
    def stats(self) -> dict[str, object]:
        """One nested dict describing every stage (for logs and dashboards)."""
        return {
            "processed": self.processed_total,
            "ingest": self.ingestor.stats(),
            "windows": self.windows.stats(),
            "drift": self.drift.stats(),
            "scheduler": self.scheduler.stats(),
        }
