"""Streaming ingestion and continuous learning over the serving stack.

The offline pipeline (:mod:`repro.core`) trains from a static dataset; the
serving layer (:mod:`repro.serving`) serves trained models.  This package
closes the loop for the paper's actual setting — crowdsourced records
arriving continuously while APs come and go (Sections III-A and V-A):

* :mod:`~repro.stream.filters` — pluggable record quality filters
  (minimum readings, RSS plausibility bounds, quantised-fingerprint dedup);
* :mod:`~repro.stream.ingest` — filter chain + building attribution +
  bounded per-building record buffers;
* :mod:`~repro.stream.window` — sliding-window bipartite graphs with
  orphaned-MAC pruning (bounded memory under unbounded traffic);
* :mod:`~repro.stream.drift` — typed drift events from MAC-vocabulary
  churn, router rejection rate and prediction-distance quantile shift;
* :mod:`~repro.stream.scheduler` — drift/cadence-triggered retraining,
  warm-started from the previous embedding and atomically hot-swapped;
* :mod:`~repro.stream.executor` — retrain execution off the ingest thread
  on a worker pool, with generation-fenced atomic installs;
* :mod:`~repro.stream.pipeline` — :class:`ContinuousLearningPipeline`,
  the façade driving all of the above one record at a time, with
  ``checkpoint()``/``resume()`` for restartable mid-stream state.
"""

from .drift import DriftConfig, DriftDetector, DriftEvent, DriftKind
from .executor import RetrainCompletion, RetrainExecutor, RetrainJob
from .filters import (
    MinReadingsFilter,
    NearDuplicateFilter,
    QualityFilter,
    RssBoundsFilter,
    default_filters,
)
from .ingest import IngestDecision, StreamIngestor
from .pipeline import ContinuousLearningPipeline, StreamConfig, StreamResult
from .scheduler import RetrainReport, RetrainScheduler, SchedulerConfig
from .window import SlidingWindowGraph, WindowConfig, WindowEviction, WindowManager

__all__ = [
    "ContinuousLearningPipeline",
    "StreamConfig",
    "StreamResult",
    "RetrainExecutor",
    "RetrainJob",
    "RetrainCompletion",
    "QualityFilter",
    "MinReadingsFilter",
    "RssBoundsFilter",
    "NearDuplicateFilter",
    "default_filters",
    "IngestDecision",
    "StreamIngestor",
    "WindowConfig",
    "WindowEviction",
    "SlidingWindowGraph",
    "WindowManager",
    "DriftKind",
    "DriftEvent",
    "DriftConfig",
    "DriftDetector",
    "SchedulerConfig",
    "RetrainReport",
    "RetrainScheduler",
]
