"""Drift detection over the live stream: when is a model going stale?

Three independent signals, each emitting a typed :class:`DriftEvent` when
it crosses its threshold:

* **MAC-vocabulary churn** — Jaccard similarity between the vocabulary a
  building's model was trained on and the vocabulary its sliding window
  observes now.  APs being installed or removed (paper Section III-A) pull
  the similarity down.
* **Router rejection rate** — fraction of recent records no building could
  claim.  A rising rate means traffic the registry does not cover (a new
  wing, a new building, or severe vocabulary drift everywhere).
* **Prediction-distance shift** — per building, a high quantile of the
  nearest-centroid distances of recent predictions, compared against a
  baseline captured right after the model went live.  Confidently clustered
  traffic sits close to a centroid; drifted traffic lands far from all.

Events are *latched*: once a (building, kind) pair fires it stays quiet
until the metric recovers or :meth:`DriftDetector.reset_building` is called
after a hot swap, so a persistently drifted building does not emit one
event per record while its retrain is pending.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..obs.log import log_event
from ..obs.runtime import current_trace_id

__all__ = ["DriftKind", "DriftEvent", "DriftConfig", "DriftDetector"]


class DriftKind(str, Enum):
    """The typed reasons a drift event can fire."""

    MAC_CHURN = "mac_churn"
    ROUTER_REJECTION = "router_rejection"
    DISTANCE_SHIFT = "distance_shift"


@dataclass(frozen=True)
class DriftEvent:
    """One threshold crossing observed on the stream."""

    kind: DriftKind
    building_id: str | None  # None for registry-wide signals (rejections)
    value: float             # the metric that crossed
    threshold: float
    detail: str
    #: Trace active when the event fired (the ``stream.process`` span of
    #: the triggering record), so drift → retrain → swap chains join.
    trace_id: str | None = None


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and window sizes of the three detectors.

    Attributes
    ----------
    vocabulary_jaccard_min:
        Fire :attr:`DriftKind.MAC_CHURN` when the Jaccard similarity of
        trained vs. window vocabulary drops below this.
    min_window_macs:
        Suppress churn checks until the window has seen this many MACs
        (a nearly empty window trivially mismatches any vocabulary).
    vocabulary_warmup_records:
        Suppress churn checks until a building's window holds this many
        records — while the window is still filling, its vocabulary is a
        subset of the trained one and Jaccard would under-read.  Enforced
        by the pipeline, which owns the window sizes.
    rejection_window / rejection_rate_max / min_rejection_observations:
        Sliding window of routing outcomes; fire
        :attr:`DriftKind.ROUTER_REJECTION` when the rejection fraction over
        the window exceeds the maximum (after enough observations).
    distance_window / distance_quantile / distance_ratio_max /
    baseline_observations:
        Per building, the first ``baseline_observations`` prediction
        distances after (re)install freeze a baseline quantile; fire
        :attr:`DriftKind.DISTANCE_SHIFT` when the same quantile over the
        most recent ``distance_window`` distances exceeds
        ``distance_ratio_max`` times the baseline.
    """

    vocabulary_jaccard_min: float = 0.6
    min_window_macs: int = 8
    vocabulary_warmup_records: int = 24
    rejection_window: int = 100
    rejection_rate_max: float = 0.3
    min_rejection_observations: int = 20
    distance_window: int = 64
    distance_quantile: float = 0.9
    distance_ratio_max: float = 1.5
    baseline_observations: int = 24

    def __post_init__(self) -> None:
        if not 0.0 < self.vocabulary_jaccard_min <= 1.0:
            raise ValueError("vocabulary_jaccard_min must be in (0, 1]")
        if not 0.0 < self.rejection_rate_max <= 1.0:
            raise ValueError("rejection_rate_max must be in (0, 1]")
        if not 0.0 < self.distance_quantile < 1.0:
            raise ValueError("distance_quantile must be in (0, 1)")
        if self.distance_ratio_max <= 1.0:
            raise ValueError("distance_ratio_max must exceed 1.0")
        if self.vocabulary_warmup_records < 0:
            raise ValueError("vocabulary_warmup_records must be non-negative")
        if not 1 <= self.min_rejection_observations <= self.rejection_window:
            raise ValueError("min_rejection_observations must be in "
                             "[1, rejection_window] or the rejection "
                             "detector could never fire")
        if not 1 <= self.baseline_observations <= self.distance_window:
            raise ValueError("baseline_observations must be in "
                             "[1, distance_window] or no baseline would "
                             "ever be captured")


class DriftDetector:
    """Tracks churn, rejections and distance quantiles; emits typed events."""

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self._rejections: deque[bool] = deque(
            maxlen=self.config.rejection_window)
        self._distances: dict[str, deque[float]] = {}
        self._baselines: dict[str, float] = {}
        self._latched: set[tuple[str | None, DriftKind]] = set()
        self.events_total: dict[str, int] = {kind.value: 0
                                             for kind in DriftKind}

    # ---------------------------------------------------------------- helpers
    def _fire(self, kind: DriftKind, building_id: str | None, value: float,
              threshold: float, detail: str) -> DriftEvent | None:
        key = (building_id, kind)
        if key in self._latched:
            return None
        self._latched.add(key)
        self.events_total[kind.value] += 1
        trace_id = current_trace_id()
        log_event("drift_latched", kind=kind.value, building_id=building_id,
                  value=value, threshold=threshold)
        return DriftEvent(kind=kind, building_id=building_id, value=value,
                          threshold=threshold, detail=detail,
                          trace_id=trace_id)

    def _recover(self, kind: DriftKind, building_id: str | None) -> None:
        key = (building_id, kind)
        if key in self._latched:
            self._latched.discard(key)
            log_event("drift_cleared", kind=kind.value,
                      building_id=building_id)

    # -------------------------------------------------------------- detectors
    def check_vocabulary(self, building_id: str,
                         trained: Iterable[str],
                         observed: Iterable[str]) -> DriftEvent | None:
        """Compare trained vs. window MAC vocabulary (Jaccard similarity)."""
        trained, observed = set(trained), set(observed)
        if len(observed) < self.config.min_window_macs:
            return None
        union = trained | observed
        jaccard = len(trained & observed) / len(union) if union else 1.0
        if jaccard < self.config.vocabulary_jaccard_min:
            return self._fire(
                DriftKind.MAC_CHURN, building_id, jaccard,
                self.config.vocabulary_jaccard_min,
                f"building {building_id!r}: trained/window vocabulary "
                f"Jaccard {jaccard:.2f} < "
                f"{self.config.vocabulary_jaccard_min:.2f} "
                f"({len(trained)} trained MACs, {len(observed)} observed)")
        self._recover(DriftKind.MAC_CHURN, building_id)
        return None

    def observe_routing(self, accepted: bool) -> DriftEvent | None:
        """Feed one routing outcome into the registry-wide rejection window."""
        self._rejections.append(not accepted)
        count = len(self._rejections)
        if count < self.config.min_rejection_observations:
            return None
        rate = sum(self._rejections) / count
        if rate > self.config.rejection_rate_max:
            return self._fire(
                DriftKind.ROUTER_REJECTION, None, rate,
                self.config.rejection_rate_max,
                f"router rejected {rate:.0%} of the last {count} records "
                f"(threshold {self.config.rejection_rate_max:.0%})")
        self._recover(DriftKind.ROUTER_REJECTION, None)
        return None

    def observe_distance(self, building_id: str,
                         distance: float) -> DriftEvent | None:
        """Feed one prediction's nearest-centroid distance for a building."""
        window = self._distances.get(building_id)
        if window is None:
            window = self._distances[building_id] = deque(
                maxlen=self.config.distance_window)
        window.append(float(distance))

        baseline = self._baselines.get(building_id)
        if baseline is None:
            if len(window) >= self.config.baseline_observations:
                self._baselines[building_id] = float(np.quantile(
                    window, self.config.distance_quantile))
            return None
        if len(window) < window.maxlen:
            return None
        current = float(np.quantile(window, self.config.distance_quantile))
        # A baseline of exactly zero only happens on degenerate toy data;
        # fall back to an absolute comparison against the ratio itself.
        ratio = current / baseline if baseline > 0.0 else float(current > 0.0)
        if ratio > self.config.distance_ratio_max:
            return self._fire(
                DriftKind.DISTANCE_SHIFT, building_id, ratio,
                self.config.distance_ratio_max,
                f"building {building_id!r}: p{self.config.distance_quantile:.0%}"
                f" prediction distance {current:.4f} is {ratio:.2f}x the "
                f"post-install baseline {baseline:.4f}")
        self._recover(DriftKind.DISTANCE_SHIFT, building_id)
        return None

    # ------------------------------------------------------------- checkpoint
    def state_dict(self) -> dict:
        """Every detector's live state as a JSON-serialisable payload."""
        return {
            "rejections": [int(rejected) for rejected in self._rejections],
            "distances": {building_id: list(window)
                          for building_id, window in self._distances.items()},
            "baselines": dict(self._baselines),
            "latched": sorted(([building_id, kind.value]
                               for building_id, kind in self._latched),
                              key=lambda pair: (pair[0] or "", pair[1])),
            "events_total": dict(self.events_total),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild windows, baselines and latches from a checkpoint payload.

        Deque bounds come from this detector's *current* configuration, so
        resuming with a smaller window keeps only the most recent entries.
        """
        self._rejections.clear()
        self._rejections.extend(bool(rejected)
                                for rejected in state["rejections"])
        self._distances = {
            building_id: deque((float(v) for v in values),
                               maxlen=self.config.distance_window)
            for building_id, values in state["distances"].items()}
        self._baselines = {building_id: float(value)
                           for building_id, value in state["baselines"].items()}
        self._latched = {(building_id, DriftKind(kind))
                         for building_id, kind in state["latched"]}
        self.events_total.update({str(kind): int(count)
                                  for kind, count in
                                  state["events_total"].items()})

    def latched_kinds(self, building_id: str | None) -> tuple[DriftKind, ...]:
        """Kinds currently latched for one building (``None`` = registry-wide).

        Public accessor for health consumers; :meth:`stats` reports the
        same latches but as display strings.
        """
        return tuple(sorted(
            (kind for latched_building, kind in self._latched
             if latched_building == building_id),
            key=lambda kind: kind.value))

    # -------------------------------------------------------------- lifecycle
    def reset_building(self, building_id: str) -> None:
        """Forget a building's baselines/latches after its model hot-swapped."""
        self._distances.pop(building_id, None)
        self._baselines.pop(building_id, None)
        for kind in DriftKind:
            self._latched.discard((building_id, kind))

    def stats(self) -> dict[str, object]:
        return {
            "events_total": dict(self.events_total),
            "latched": sorted(f"{b}:{k.value}" for b, k in self._latched),
            "rejection_rate": (sum(self._rejections) / len(self._rejections)
                               if self._rejections else 0.0),
            "distance_baselines": dict(self._baselines),
        }
