"""Deterministic fault plans: what goes wrong, where, and on which hit.

A :class:`FaultPlan` is a script of failures compiled against named
failpoints (see :mod:`repro.faults.failpoints`): "the third ``retrain.fit``
raises", "the second ``checkpoint.write`` is torn mid-file", "kill the
process at the first ``swap.install``".  Every decision is deterministic —
explicit hit numbers fire on exactly those hits, probabilistic specs draw
from a per-spec :class:`random.Random` seeded from ``(plan seed, site,
spec index)`` — so a chaos run is *replayable*: the same plan against the
same workload injects the same faults at the same points, which is what
lets a drill assert byte-identical recovery instead of eyeballing logs.

Fault kinds
-----------

``error``
    Raise :class:`FaultInjected` (a ``RuntimeError``) at the failpoint.
    Exercises the caller's retry/backoff path exactly like a real fit or
    I/O failure would.
``latency``
    Sleep ``delay_seconds`` (injectable sleeper) before continuing.
``torn_write``
    Truncate the file the failpoint passed as context to a deterministic
    fraction of its bytes, then continue silently — the write "succeeds"
    but the payload is torn, the way a crashed page cache or bit rot
    presents.  Exercises digest checks and last-good recovery.
``kill``
    Raise :class:`ProcessKilled`.  It derives from ``BaseException`` on
    purpose: resilience code that catches ``Exception`` (error
    completions, stream catch-alls) must *not* absorb a simulated process
    death — like a real SIGKILL, it is only observable from outside.
``clock_jump``
    Accumulate a clock offset that :class:`repro.faults.clock.FaultyClock`
    folds into its reading — wall-clock jumps (NTP step, VM migration)
    without touching real time.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FaultInjected", "ProcessKilled", "FiredFault", "FaultPlan"]

_KINDS = ("error", "latency", "torn_write", "kill", "clock_jump")


class FaultInjected(RuntimeError):
    """An exception raised on purpose by an armed failpoint."""


class ProcessKilled(BaseException):
    """Simulated hard process death at a failpoint.

    Deliberately *not* an ``Exception``: every recovery layer in the stack
    (executor error completions, the stream's never-raise catch-alls)
    catches ``Exception``, and a kill must sail through all of them — the
    only valid handler is the chaos harness standing in for the operating
    system.
    """


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired, for post-drill assertions."""

    site: str
    hit: int
    kind: str


class _ArmedFault:
    """One spec plus its mutable firing state (rng stream, fires used)."""

    def __init__(self, site: str, kind: str, seed_key: str,
                 hits: frozenset[int] | None, probability: float | None,
                 max_fires: int | None, delay_seconds: float,
                 message: str | None) -> None:
        self.site = site
        self.kind = kind
        self.hits = hits
        self.probability = probability
        self.max_fires = max_fires
        self.delay_seconds = delay_seconds
        self.message = message
        self.fires = 0
        # Seeded from a stable string, never from Python's salted hash():
        # the same plan fires identically in every process.
        self._rng = random.Random(seed_key)

    def should_fire(self, hit: int) -> bool:
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if self.hits is not None:
            return hit in self.hits
        if self.probability is not None:
            # One draw per evaluation keeps the stream aligned with the
            # hit counter, so replays see identical coin flips.
            return self._rng.random() < self.probability
        return True

    def torn_fraction(self) -> float:
        """Deterministic fraction of the file to keep for a torn write."""
        return 0.25 + 0.5 * self._rng.random()


class FaultPlan:
    """A seeded, replayable schedule of faults over named failpoints.

    Build specs with :meth:`fail` / :meth:`delay` / :meth:`torn_write` /
    :meth:`kill` / :meth:`clock_jump`, then activate the plan through
    :func:`repro.faults.failpoints.install` (or the ``active`` context
    manager).  Each call to :meth:`fire` counts one *hit* of a site; specs
    decide from the hit number (or their seeded RNG) whether to act.
    ``fired`` records every fault that actually triggered, in order, for
    drill assertions.
    """

    def __init__(self, seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.seed = seed
        self._sleep = sleep
        self._specs: dict[str, list[_ArmedFault]] = {}
        self._hits: dict[str, int] = {}
        self._clock_jump_pending = 0.0
        self.fired: list[FiredFault] = []
        # Fires can come from retrain worker threads concurrently with the
        # ingest thread's serving failpoints.
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- authoring
    def _add(self, site: str, kind: str, hits=None, probability=None,
             times=None, delay_seconds: float = 0.0,
             message: str | None = None) -> "FaultPlan":
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        if hits is not None and probability is not None:
            raise ValueError("give explicit hits or a probability, not both")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if times is not None and times < 1:
            raise ValueError("times must be positive (or None for unlimited)")
        if delay_seconds < 0.0:
            raise ValueError("delay_seconds cannot be negative")
        hit_set = None if hits is None else frozenset(int(h) for h in hits)
        if hit_set is not None and any(h < 1 for h in hit_set):
            raise ValueError("hit numbers are 1-based")
        index = sum(len(specs) for specs in self._specs.values())
        spec = _ArmedFault(site, kind,
                           seed_key=f"{self.seed}:{site}:{index}",
                           hits=hit_set, probability=probability,
                           max_fires=times, delay_seconds=delay_seconds,
                           message=message)
        self._specs.setdefault(site, []).append(spec)
        return self

    def fail(self, site: str, hits=None, probability=None, times=None,
             message: str | None = None) -> "FaultPlan":
        """Raise :class:`FaultInjected` at ``site`` on the matching hits."""
        return self._add(site, "error", hits, probability, times,
                         message=message)

    def delay(self, site: str, seconds: float, hits=None, probability=None,
              times=None) -> "FaultPlan":
        """Sleep ``seconds`` at ``site`` on the matching hits."""
        return self._add(site, "latency", hits, probability, times,
                         delay_seconds=seconds)

    def torn_write(self, site: str = "checkpoint.write", hits=None,
                   probability=None, times=None) -> "FaultPlan":
        """Truncate the file being written at ``site`` on the matching hits."""
        return self._add(site, "torn_write", hits, probability, times)

    def kill(self, site: str, hits=None, probability=None,
             times=None) -> "FaultPlan":
        """Raise :class:`ProcessKilled` at ``site`` on the matching hits."""
        return self._add(site, "kill", hits, probability, times)

    def clock_jump(self, seconds: float, hits=None, probability=None,
                   times=None) -> "FaultPlan":
        """Jump a :class:`~repro.faults.clock.FaultyClock` by ``seconds``."""
        return self._add("clock.jump", "clock_jump", hits, probability, times,
                         delay_seconds=seconds)

    # ------------------------------------------------------------------- firing
    def hit_count(self, site: str) -> int:
        """How many times ``site`` has been evaluated under this plan."""
        with self._lock:
            return self._hits.get(site, 0)

    def take_clock_jump(self) -> float:
        """Clock offset accumulated by fired ``clock_jump`` specs.

        Consumed (returned once, then cleared) so a :class:`FaultyClock`
        can fold it into its own permanent offset — the jump survives the
        plan being uninstalled and time never runs backwards.
        """
        with self._lock:
            pending, self._clock_jump_pending = self._clock_jump_pending, 0.0
            return pending

    def sites(self) -> frozenset[str]:
        """Every site this plan has specs for (validated at install time)."""
        return frozenset(self._specs)

    def _decide(self, site: str) -> tuple[int, list[tuple[_ArmedFault, float]]]:
        """Count one hit of ``site`` and collect the specs that fire.

        The decision (hit counting, RNG draws, ``fired`` recording) happens
        under the plan lock; what to *do* about it is the caller's business
        — :meth:`fire` acts in-process, :meth:`evaluate` turns the firing
        specs into picklable directives a compute-pool worker executes on
        the other side of a process boundary.  Either way the hit counter
        and every RNG stream advance identically, so a workload replays the
        same faults whether its compute runs in-process or pooled.
        """
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            actions: list[tuple[_ArmedFault, float]] = []
            for spec in self._specs.get(site, ()):
                if spec.should_fire(hit):
                    spec.fires += 1
                    fraction = (spec.torn_fraction()
                                if spec.kind == "torn_write" else 0.0)
                    actions.append((spec, fraction))
                    self.fired.append(FiredFault(site=site, hit=hit,
                                                 kind=spec.kind))
                    if spec.kind == "clock_jump":
                        self._clock_jump_pending += spec.delay_seconds
            return hit, actions

    def fire(self, site: str, path: str | Path | None = None,
             building_id: str | None = None) -> None:
        """Evaluate one hit of ``site``; act on every matching spec.

        The actions themselves — raising, sleeping, truncating — run
        outside the plan lock so a latency fault on one thread never stalls
        another thread's failpoint evaluation.
        """
        hit, actions = self._decide(site)
        for spec, fraction in actions:
            self._act(spec, site, hit, fraction, path, building_id)

    def evaluate(self, site: str,
                 building_id: str | None = None) -> list[dict[str, object]]:
        """One hit of ``site`` as picklable directives instead of actions.

        Used by the compute pool: the *decision* stays in the parent (one
        process-global hit counter, seeded RNG streams intact), while the
        *effect* ships to whichever worker runs the computation — an
        ``error`` directive raises :class:`FaultInjected` worker-side, a
        ``latency`` directive sleeps there, and a ``kill`` directive hard-
        exits the worker process (the pool-mode analogue of
        :class:`ProcessKilled`: the process that dies at ``serve.compute``
        is the one doing the computing).  Each fired spec is logged here,
        exactly once, since workers have no parent-side logger.
        """
        from ..obs.log import log_event

        hit, actions = self._decide(site)
        directives: list[dict[str, object]] = []
        for spec, _ in actions:
            detail = {"site": site, "hit": hit, "kind": spec.kind}
            if building_id is not None:
                detail["building_id"] = building_id
            if spec.kind == "clock_jump":
                log_event("fault_injected", **detail,
                          jump_seconds=spec.delay_seconds)
                continue  # consumed by FaultyClock, nothing to ship
            if spec.kind == "torn_write":
                raise ValueError(
                    f"torn_write fault at {site!r} cannot be dispatched to a "
                    "compute-pool worker; this site does not write files")
            message = spec.message or (f"injected {spec.kind} at {site!r} "
                                       f"(hit {hit})")
            if spec.kind == "latency":
                log_event("fault_injected", **detail,
                          delay_seconds=spec.delay_seconds)
            else:
                log_event("fault_injected", **detail, message=message)
            directives.append({"kind": spec.kind,
                               "delay_seconds": spec.delay_seconds,
                               "message": message})
        return directives

    def _act(self, spec: _ArmedFault, site: str, hit: int, fraction: float,
             path: str | Path | None, building_id: str | None) -> None:
        # Imported here, not at module top: log.py -> runtime -> tracer is
        # the obs package; keeping the import local keeps FaultPlan usable
        # in contexts that stub obs out.
        from ..obs.log import log_event

        detail = {"site": site, "hit": hit, "kind": spec.kind}
        if building_id is not None:
            detail["building_id"] = building_id
        if spec.kind == "clock_jump":
            log_event("fault_injected", **detail,
                      jump_seconds=spec.delay_seconds)
            return
        if spec.kind == "latency":
            log_event("fault_injected", **detail,
                      delay_seconds=spec.delay_seconds)
            self._sleep(spec.delay_seconds)
            return
        if spec.kind == "torn_write":
            if path is None:
                raise ValueError(
                    f"torn_write fault at {site!r} needs a file path in the "
                    "failpoint context; this site does not write files")
            target = Path(path)
            data = target.read_bytes()
            keep = min(len(data) - 1, int(len(data) * fraction)) if data else 0
            target.write_bytes(data[:max(keep, 0)])
            log_event("fault_injected", **detail, torn_bytes=len(data) - keep,
                      kept_bytes=keep)
            return
        message = spec.message or (f"injected {spec.kind} at {site!r} "
                                   f"(hit {hit})")
        log_event("fault_injected", **detail, message=message)
        if spec.kind == "kill":
            raise ProcessKilled(message)
        raise FaultInjected(message)

    # -------------------------------------------------------------------- state
    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "hits": dict(self._hits),
                "fired_total": len(self.fired),
                "fired": [(f.site, f.hit, f.kind) for f in self.fired],
            }
