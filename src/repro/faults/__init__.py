"""Deterministic fault injection for the serving & learning loop.

``FaultPlan`` scripts failures (exceptions, latency, torn writes,
crash-kills, clock jumps) against named failpoints compiled into the
stack; ``install``/``active`` arm a plan process-wide; ``fire`` is the
zero-overhead hook production code calls.  See ``plan.py`` for the fault
model and ``failpoints.py`` for the site registry.
"""

from .clock import FaultyClock
from .failpoints import (
    SITES,
    active,
    active_plan,
    enabled,
    fire,
    install,
    uninstall,
)
from .plan import FaultInjected, FaultPlan, FiredFault, ProcessKilled

__all__ = [
    "FaultPlan",
    "FaultInjected",
    "ProcessKilled",
    "FiredFault",
    "FaultyClock",
    "SITES",
    "install",
    "uninstall",
    "enabled",
    "active",
    "active_plan",
    "fire",
]
