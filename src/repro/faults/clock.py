"""A clock that jumps when the fault plan says so.

Schedulers, executors and health monitors all take injected clocks; wiring
a :class:`FaultyClock` in lets a plan's ``clock_jump`` specs simulate NTP
steps and suspended-VM gaps against real components.  Jumps fold into the
clock's own permanent offset, so time never runs backwards — not even
when the plan that caused the jump is uninstalled mid-run.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from . import failpoints

__all__ = ["FaultyClock"]


class FaultyClock:
    """Monotonic-ish clock with failpoint-driven jumps and manual advance.

    Each reading fires the ``clock.jump`` site; any offset the installed
    plan accumulated (from ``clock_jump`` specs, on this or any earlier
    fire) is absorbed into ``self.offset`` before the reading is returned.
    """

    def __init__(self, base: Callable[[], float] = time.monotonic) -> None:
        self._base = base
        self.offset = 0.0

    def advance(self, seconds: float) -> None:
        """Manually push the clock forward (test convenience)."""
        if seconds < 0.0:
            raise ValueError("clocks do not run backwards")
        self.offset += seconds

    def __call__(self) -> float:
        failpoints.fire("clock.jump")
        plan = failpoints.active_plan()
        if plan is not None:
            self.offset += plan.take_clock_jump()
        return self._base() + self.offset
