"""Process-global failpoint registry with a zero-overhead disabled path.

Failpoints are named injection sites compiled into production code —
``faults.fire("retrain.fit", building_id=...)`` sits at the top of the
executor's fit, ``fire("checkpoint.write", path=tmp)`` between an atomic
write's tmp file and its rename, and so on.  With no plan installed (the
normal case, including all of production) a fire is a single module-global
``None`` check and an immediate return: no allocation, no dict lookup, no
lock — the same null-path discipline as :mod:`repro.obs.runtime`, and
guarded by the same kind of overhead check
(``benchmarks/check_fault_overhead.py``).

Install a :class:`~repro.faults.plan.FaultPlan` to arm the sites it has
specs for; ``uninstall()`` (or the :func:`active` context manager) disarms
everything.  One plan at a time, process-wide — faults are a property of
the simulated machine, not of any one component.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from .plan import FaultPlan

__all__ = ["SITES", "install", "uninstall", "enabled", "active_plan",
           "active", "fire", "evaluate"]

#: Every injection site compiled into the stack.  Plans naming a site
#: outside this set fail at install time, so a typo'd spec can't silently
#: never fire.
SITES = frozenset({
    "retrain.fit",        # executor, before the fit function runs
    "checkpoint.write",   # persistence, after tmp write / before rename
    "checkpoint.read",    # persistence, before parsing a payload
    "swap.install",       # serving, before a hot model swap
    "serve.compute",      # serving, before unlocked engine compute
    "clock.jump",         # FaultyClock, every reading
})

_plan: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide.  Replaces any previously installed plan."""
    unknown = plan.sites() - SITES
    if unknown:
        raise ValueError(
            f"fault plan names unknown sites {sorted(unknown)}; "
            f"known sites: {sorted(SITES)}")
    global _plan
    _plan = plan


def uninstall() -> None:
    """Disarm all failpoints; fires return to the single-check null path."""
    global _plan
    _plan = None


def enabled() -> bool:
    return _plan is not None


def active_plan() -> FaultPlan | None:
    return _plan


@contextmanager
def active(plan: FaultPlan):
    """Arm ``plan`` for the duration of a ``with`` block.

    Uninstalls on every exit path — including a :class:`ProcessKilled`
    escaping the block — so one drill's faults can never leak into the
    next test.
    """
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fire(site: str, path: str | Path | None = None,
         building_id: str | None = None) -> None:
    """Evaluate one hit of ``site`` against the installed plan, if any.

    This is the call compiled into production code, so the disabled path
    must stay free: one global load, one ``is None`` test, return.
    Keyword defaults (not ``**kwargs``) keep even the armed call free of
    dict allocation.
    """
    plan = _plan
    if plan is None:
        return
    plan.fire(site, path=path, building_id=building_id)


def evaluate(site: str,
             building_id: str | None = None) -> list[dict[str, object]] | None:
    """One hit of ``site`` as picklable fault directives (compute-pool path).

    Counts against the same process-global hit counter as :func:`fire`, so
    a workload replays identically whether its ``serve.compute`` runs
    in-process (fire) or in a pool worker (evaluate + worker-side
    execution).  Same single-check null path as :func:`fire`: ``None``
    while no plan is installed.
    """
    plan = _plan
    if plan is None:
        return None
    return plan.evaluate(site, building_id=building_id)
