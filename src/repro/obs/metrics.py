"""Shared metrics registry: counters, gauges and latency histograms.

Every subsystem used to grow its own counters (``ServingTelemetry`` in the
serving layer, ad-hoc ``hits``/``misses`` attributes on the sampler cache,
nothing at all in the stream and training layers).  :class:`MetricsRegistry`
is the one implementation they all share now: thread-safe counters, gauges
and fixed-bucket :class:`LatencyHistogram`\\ s behind a ``snapshot()``, a
cross-instance ``merged_snapshot()`` (the per-shard fleet view), and two
exposition formats — Prometheus text (:meth:`MetricsRegistry.
to_prometheus_text`) and JSON (:meth:`MetricsRegistry.to_json`) — so any
instance can back a metrics endpoint without further plumbing.

``repro.serving.telemetry.ServingTelemetry`` is a thin alias kept for
compatibility; the behaviour lives here.  The module is dependency-free
(stdlib only) so the core engine can import it without dragging the serving
stack in.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager

__all__ = ["LatencyHistogram", "MetricsRegistry"]

#: Exponential bucket upper bounds in seconds (250µs … ~8s), tuned for the
#: online-inference latencies measured by ``bench_online_inference``.
_DEFAULT_BOUNDS = (0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016,
                   0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048, 4.096,
                   8.192)

#: Characters Prometheus forbids in metric names, replaced by ``_``.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(prefix: str, name: str) -> str:
    """A metric name sanitised to the Prometheus grammar."""
    sanitised = _PROM_INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return f"{prefix}_{sanitised}" if prefix else sanitised


class LatencyHistogram:
    """Fixed-bucket latency histogram with conservative percentile estimates."""

    def __init__(self, bounds: Sequence[float] = _DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.bounds = tuple(float(b) for b in bounds)
        # One extra overflow bucket for observations above the last bound.
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("latency cannot be negative")
        bucket = bisect.bisect_left(self.bounds, seconds)
        self._counts[bucket] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile observation.

        Conservative (never under-reports); the overflow bucket reports the
        exact observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(q * self.count)))
        cumulative = 0
        for bucket, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                if bucket < len(self.bounds):
                    return self.bounds[bucket]
                return self.max
        return self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Used to aggregate per-shard latency histograms into one fleet view;
        requires identical bucket bounds so counts add bucket-by-bucket.
        Merging is exactly equivalent to having recorded the concatenation
        of both observation streams (hypothesis-enforced).
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for bucket, count in enumerate(other._counts):  # noqa: SLF001
            self._counts[bucket] += count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the overflow bucket), copied."""
        return list(self._counts)

    def snapshot(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Counters, gauges and named latency histograms behind one ``snapshot()``.

    All mutating operations are guarded by an internal mutex, so one
    registry instance can be shared by threads serving different shards
    (counter increments are read-modify-write and would otherwise race).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._mutex = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._started_at = clock()

    # --------------------------------------------------------------- counters
    def increment(self, name: str, amount: int = 1) -> None:
        with self._mutex:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # ----------------------------------------------------------------- gauges
    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time measurement (window sizes, buffer depths...).

        Unlike counters, gauges overwrite: the snapshot reports the latest
        value, which is what streaming maintenance loops need for quantities
        that go both up and down.
        """
        with self._mutex:
            self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # ------------------------------------------------------------- histograms
    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._mutex:
                histogram = self._histograms.setdefault(name,
                                                        LatencyHistogram())
        return histogram

    def observe(self, name: str, seconds: float) -> None:
        histogram = self.histogram(name)
        with self._mutex:
            histogram.record(seconds)

    @contextmanager
    def time(self, name: str):
        """Context manager recording the elapsed time into ``name``."""
        started = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - started)

    def histogram_snapshot(self, name: str) -> LatencyHistogram | None:
        """A consistent clone of one histogram, or ``None`` if absent.

        Unlike :meth:`histogram` this never creates the histogram, and the
        clone is taken under the mutex — windowed consumers (the health
        monitor's trailing-percentile tracker) read bucket counts from it
        without racing concurrent ``record`` calls.
        """
        with self._mutex:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            clone = LatencyHistogram(histogram.bounds)
            clone.merge(histogram)
            return clone

    # ---------------------------------------------------------------- export
    def _copy_state(self) -> tuple[dict[str, int], dict[str, float],
                                   dict[str, LatencyHistogram]]:
        """A consistent copy of all state, taken under the mutex.

        Snapshots are read by operator/aggregator threads while serving
        threads keep writing; iterating the live dicts (or merging a live
        histogram) would race with a first-time counter insert or a
        concurrent ``record``.
        """
        with self._mutex:
            histograms = {}
            for name, histogram in self._histograms.items():
                clone = LatencyHistogram(histogram.bounds)
                clone.merge(histogram)
                histograms[name] = clone
            return dict(self._counters), dict(self._gauges), histograms

    def _assemble_snapshot(self, counters: dict[str, int],
                           gauges: dict[str, float],
                           histograms: dict[str, LatencyHistogram],
                           ) -> dict[str, object]:
        uptime = self._clock() - self._started_at
        predictions = counters.get("predictions_total", 0)
        return {
            "uptime_seconds": uptime,
            "throughput_rps": predictions / uptime if uptime > 0 else 0.0,
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "latency": {name: histogram.snapshot()
                        for name, histogram in sorted(histograms.items())},
        }

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view of every counter and histogram, plus uptime."""
        counters, gauges, histograms = self._copy_state()
        return self._assemble_snapshot(counters, gauges, histograms)

    def _merged_state(self, others: Iterable["MetricsRegistry"],
                      ) -> tuple[dict[str, int], dict[str, float],
                                 dict[str, LatencyHistogram]]:
        """This instance's state with other instances' data folded in.

        Counters add, gauges from other instances are kept only where this
        instance has no value of the same name (per-shard gauges should use
        distinct names), and histograms of the same name merge bucket-wise.
        Every participant's state is copied under its own mutex first, so
        the merge never races with concurrent serving threads.
        """
        counters, gauges, histograms = self._copy_state()
        for other in others:
            other_counters, other_gauges, other_histograms = \
                other._copy_state()  # noqa: SLF001
            for name, value in other_counters.items():
                counters[name] = counters.get(name, 0) + value
            for name, value in other_gauges.items():
                gauges.setdefault(name, value)
            for name, histogram in other_histograms.items():
                base = histograms.get(name)
                if base is None:
                    histograms[name] = histogram
                else:
                    base.merge(histogram)
        return counters, gauges, histograms

    def merged_snapshot(self,
                        others: Iterable["MetricsRegistry"]) -> dict[str, object]:
        """This instance's snapshot with other instances' data folded in.

        See :meth:`_merged_state` for the merge semantics;
        ``uptime_seconds``/``throughput_rps`` stay this instance's view — the
        aggregating service and its shards share one clock.
        """
        return self._assemble_snapshot(*self._merged_state(others))

    # ------------------------------------------------------------- exposition
    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`snapshot` serialised as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus_text(self, prefix: str = "repro",
                           others: Iterable["MetricsRegistry"] = ()) -> str:
        """The registry in the Prometheus text exposition format.

        Counters become ``<prefix>_<name>`` counters, gauges become gauges,
        and every latency histogram is exposed as a native Prometheus
        histogram: cumulative ``_bucket{le="..."}`` series (including the
        mandatory ``+Inf`` bucket), ``_sum`` and ``_count``.  Names are
        sanitised to the Prometheus grammar (``.``/``:`` and friends become
        ``_``); when two raw names sanitise to the same family, later ones
        get a deterministic ``_2``/``_3``... suffix (sorted order within
        each section) rather than emitting a duplicate family, which scrape
        parsers reject.  ``others`` folds further registries in first (the
        sharded service's per-shard telemetry merged into one fleet view);
        see :meth:`_merged_state` for the merge semantics.
        """
        counters, gauges, histograms = self._merged_state(others)
        used_families: set[str] = set()

        def _family(name: str) -> str:
            base = _prometheus_name(prefix, name)
            family, suffix = base, 2
            while family in used_families:
                family = f"{base}_{suffix}"
                suffix += 1
            used_families.add(family)
            return family

        lines: list[str] = []
        for name, value in sorted(counters.items()):
            metric = _family(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in sorted(gauges.items()):
            metric = _family(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
        for name, histogram in sorted(histograms.items()):
            metric = _family(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            counts = histogram.bucket_counts()
            for bound, count in zip(histogram.bounds, counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += counts[-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {histogram.total}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")
