"""Structured JSON log events for lifecycle transitions.

Rare, operationally interesting transitions — a model hot-swapped in,
drift latched or cleared, a retrain fenced as stale, a checkpoint written
or resumed — are emitted as single-line JSON records on the stdlib logger
``repro.obs`` so any logging config (files, journald, a JSON shipper) can
pick them up without this package knowing about handlers.

These are *events*, not spans: they mark state changes, carry the active
trace ID when one exists (linking the event to the request or retrain that
caused it), and are cheap enough to leave on permanently — when no handler
is attached at INFO, :func:`log_event` exits on the ``isEnabledFor`` check
before any JSON is built.
"""

from __future__ import annotations

import json
import logging

from . import runtime

__all__ = ["LOGGER_NAME", "log_event"]

LOGGER_NAME = "repro.obs"
_logger = logging.getLogger(LOGGER_NAME)


def log_event(event: str, **fields: object) -> None:
    """Emit one structured lifecycle event as a JSON log line.

    ``event`` names the transition (``hot_swap_installed``,
    ``drift_latched``, ...); keyword fields become JSON keys.  The active
    trace ID, if any, is attached automatically as ``trace_id``.
    """
    if not _logger.isEnabledFor(logging.INFO):
        return
    payload: dict[str, object] = {"event": event}
    trace_id = runtime.current_trace_id()
    if trace_id is not None:
        payload["trace_id"] = trace_id
    payload.update(fields)
    _logger.info(json.dumps(payload, sort_keys=False, default=str))
