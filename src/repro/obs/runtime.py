"""Process-wide observability switch with a zero-allocation disabled path.

Engine hot paths (the SGD batch loop, per-record serving) cannot afford a
per-call allocation just to discover observability is off.  This module
keeps one process-global tracer/registry pair behind module-level
functions; while disabled:

* :func:`span` returns one shared null context manager — no object is
  allocated, no clock is read, ``with span("x"):`` costs two attribute
  calls on a singleton.
* :func:`stage`, :func:`metric_increment`, :func:`observe` and
  :func:`set_gauge` return after a single global check.

Nothing here touches RNG or wall-clock time on the disabled path, so the
engine's byte-identity guarantees hold with the instrumentation compiled
in (and, because span IDs are counter-based, they also hold with tracing
*enabled* — see ``tests/obs/test_identity.py``).

Instrumented call sites should also guard any *argument construction*
behind :func:`enabled` (or fetch the tracer once via
:func:`active_tracer`) when building attributes would itself allocate.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .tracer import SpanTracer

__all__ = [
    "enable", "disable", "enabled", "active_tracer", "get_metrics",
    "span", "stage", "current_trace_id", "metric_increment", "observe",
    "set_gauge",
]


class _NullSpan:
    """Shared do-nothing stand-in for a span context; never allocates."""

    __slots__ = ()
    span = None

    def set(self, key, value):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()

_tracer: SpanTracer | None = None
_metrics: MetricsRegistry | None = None


def enable(tracer: SpanTracer | None = None,
           metrics: MetricsRegistry | None = None,
           ) -> tuple[SpanTracer, MetricsRegistry]:
    """Turn observability on, installing (or creating) tracer + registry."""
    global _tracer, _metrics
    _tracer = tracer if tracer is not None else SpanTracer()
    _metrics = metrics if metrics is not None else MetricsRegistry()
    return _tracer, _metrics


def disable() -> None:
    """Turn observability off; hot paths fall back to the null singleton."""
    global _tracer, _metrics
    _tracer = None
    _metrics = None


def enabled() -> bool:
    return _tracer is not None


def active_tracer() -> SpanTracer | None:
    """The installed tracer, or None while disabled."""
    return _tracer


def get_metrics() -> MetricsRegistry | None:
    """The installed global registry, or None while disabled."""
    return _metrics


def span(name: str, trace_id: str | None = None):
    """A span context on the global tracer, or the shared null span.

    Call sites pass only the name on the hot path; attach attributes via
    ``.set(...)`` so nothing is allocated when tracing is off.
    """
    if _tracer is None:
        return _NULL_SPAN
    return _tracer.span(name, trace_id=trace_id)


def stage(name: str, seconds: float,
          attributes: dict[str, object] | None = None) -> None:
    """Record a pre-measured stage span (no-op while disabled)."""
    if _tracer is not None:
        _tracer.add_span(name, seconds, attributes)


def current_trace_id() -> str | None:
    """The live trace ID on this thread, or None (also while disabled)."""
    if _tracer is None:
        return None
    return _tracer.current_trace_id()


def metric_increment(name: str, amount: int = 1) -> None:
    """Bump a counter on the global registry (no-op while disabled)."""
    if _metrics is not None:
        _metrics.increment(name, amount)


def observe(name: str, seconds: float) -> None:
    """Record a latency into the global registry (no-op while disabled)."""
    if _metrics is not None:
        _metrics.observe(name, seconds)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the global registry (no-op while disabled)."""
    if _metrics is not None:
        _metrics.set_gauge(name, value)
