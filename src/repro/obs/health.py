"""Per-building and per-shard health scorecards: one verdict, with reasons.

The serving and stream layers each expose raw signals — drift latches,
rejection counters, cache hit rates, latency histograms, retrain backlogs
— but "is building B healthy?" requires *fusing* them.  This module owns
that fusion:

* :class:`HealthMonitor` watches a serving façade (one-lock or sharded)
  and optionally the :class:`ContinuousLearningPipeline` driving it, and
  renders :class:`Scorecard`\\ s per building, per shard and for the
  service as a whole.
* Every verdict is one of ``healthy`` / ``degraded`` / ``unhealthy`` and
  carries machine-readable :class:`HealthReason`\\ s (stable ``code``,
  severity, the observed value and the threshold it crossed), so an
  operator — or a rebalancer — can act on the *why*, not just the colour.
* Rates and tail latencies are computed over a **trailing window** from
  counter/histogram deltas (:mod:`repro.obs.timeseries`), not from
  process-lifetime cumulative state: a building recovers its ``healthy``
  verdict once the spike that degraded it leaves the window, which is
  what makes the verdict actionable.

The monitor reads the serving/stream objects through their public duck
surface only (``telemetry``, ``shards``, ``drift``, ``scheduler`` ...) and
deliberately never imports :mod:`repro.serving` or :mod:`repro.stream` —
those packages import :mod:`repro.obs`, and the consumption layer must
not close an import cycle back onto them.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum

from . import runtime
from .timeseries import HistogramWindow, MetricsSampler

__all__ = ["HealthStatus", "HealthReason", "HealthPolicy", "Scorecard",
           "HealthMonitor"]

#: Subject key of the service-wide telemetry in the monitor's internals.
_SERVICE = "service"

#: Subject key of the process-global runtime registry (core-layer counters
#: such as ``delta_sampler_*``; present only while observability is enabled).
_RUNTIME = "runtime"

#: Verdict ordering for aggregation (higher = worse).
_SEVERITY_RANK = {"healthy": 0, "degraded": 1, "unhealthy": 2}


class HealthStatus(str, Enum):
    """The three-colour verdict of a scorecard."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"


@dataclass(frozen=True)
class HealthReason:
    """One machine-readable cause behind a non-healthy verdict.

    ``code`` is stable (``drift_latched:mac_churn``, ``tail_latency``,
    ``rejection_rate``, ``cache_hit_rate``, ``retrain_overdue``,
    ``retrain_errors``); ``severity`` is ``"degraded"``, ``"unhealthy"``
    or ``"info"`` (informational, never affects the verdict).
    """

    code: str
    severity: str
    detail: str
    value: float | None = None
    threshold: float | None = None

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {"code": self.code,
                                      "severity": self.severity,
                                      "detail": self.detail}
        if self.value is not None:
            payload["value"] = self.value
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        return payload


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds the monitor fuses raw signals against.

    Defaults are tuned for the interactive serving stack: a p95 above a
    quarter second is worth flagging, above a second it is an outage-class
    signal.  All rates are computed over ``window_seconds`` of history,
    with minimum-observation guards so an idle service is simply healthy
    rather than noisily undefined.
    """

    window_seconds: float = 300.0
    tail_quantile: float = 0.95
    degraded_tail_latency_seconds: float = 0.25
    unhealthy_tail_latency_seconds: float = 1.0
    min_latency_observations: int = 5
    degraded_rejection_rate: float = 0.1
    unhealthy_rejection_rate: float = 0.5
    min_routing_observations: int = 20
    min_cache_hit_rate: float = 0.02
    min_cache_lookups: int = 50
    #: A drift-latched building whose last hot swap is older than this is
    #: overdue for its retrain (``None`` disables the check).
    retrain_overdue_seconds: float | None = 600.0
    #: This many simultaneous ``degraded`` reasons escalate the verdict to
    #: ``unhealthy`` — one bad signal degrades, corroborated bad signals
    #: (drift *and* a latency spike) mean the building is failing users.
    unhealthy_reason_count: int = 2

    def __post_init__(self) -> None:
        if self.window_seconds <= 0.0:
            raise ValueError("window_seconds must be positive")
        if not 0.0 < self.tail_quantile <= 1.0:
            raise ValueError("tail_quantile must be in (0, 1]")
        if (self.unhealthy_tail_latency_seconds
                < self.degraded_tail_latency_seconds):
            raise ValueError("unhealthy tail-latency threshold cannot be "
                             "below the degraded one")
        if self.unhealthy_rejection_rate < self.degraded_rejection_rate:
            raise ValueError("unhealthy rejection-rate threshold cannot be "
                             "below the degraded one")
        if self.unhealthy_reason_count < 1:
            raise ValueError("unhealthy_reason_count must be at least 1")


@dataclass(frozen=True)
class Scorecard:
    """One subject's verdict plus the reasons and supporting numbers."""

    subject: str
    status: HealthStatus
    reasons: tuple[HealthReason, ...] = ()
    metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "subject": self.subject,
            "status": self.status.value,
            "reasons": [reason.to_dict() for reason in self.reasons],
            "metrics": dict(self.metrics),
        }


def _verdict(reasons: tuple[HealthReason, ...],
             escalation_count: int) -> HealthStatus:
    if any(reason.severity == "unhealthy" for reason in reasons):
        return HealthStatus.UNHEALTHY
    degraded = sum(reason.severity == "degraded" for reason in reasons)
    if degraded >= escalation_count:
        return HealthStatus.UNHEALTHY
    if degraded:
        return HealthStatus.DEGRADED
    return HealthStatus.HEALTHY


def _worst(*statuses: HealthStatus) -> HealthStatus:
    return max(statuses,
               key=lambda status: _SEVERITY_RANK[status.value],
               default=HealthStatus.HEALTHY)


class _Subject:
    """Windowed view over one telemetry registry (service or shard)."""

    def __init__(self, registry, clock: Callable[[], float],
                 policy: HealthPolicy) -> None:
        self.registry = registry
        self.sampler = MetricsSampler(registry, clock=clock)
        self.latency = HistogramWindow(window_seconds=policy.window_seconds)
        self._policy = policy

    def observe(self, now: float) -> None:
        self.sampler.sample()
        histogram = self.registry.histogram_snapshot("request_seconds")
        if histogram is not None:
            self.latency.observe(now, histogram)

    def window_delta(self, counter: str, now: float) -> float:
        return self.sampler.series(f"counters.{counter}").increase(
            self._policy.window_seconds, now=now)


class HealthMonitor:
    """Fuses serving + stream signals into per-building/shard scorecards.

    Parameters
    ----------
    service:
        A serving façade — anything exposing ``building_ids`` and
        ``telemetry``; a ``shards`` attribute (the sharded service) adds
        per-shard scorecards and attributes each building's latency/cache
        signals to its owning shard.  Defaults to ``pipeline.service``.
    pipeline:
        Optional :class:`ContinuousLearningPipeline`; adds drift-latch,
        pending/stale-retrain and last-swap-age signals.
    policy:
        Fusion thresholds; see :class:`HealthPolicy`.
    clock:
        Injected monotonic clock shared with the windowed statistics, so
        tests drive verdict flips deterministically.

    Call :meth:`report` periodically (every scrape does it): each call
    takes one windowed observation of every telemetry source, then renders
    the scorecards from trailing-window state.
    """

    def __init__(self, service=None, pipeline=None,
                 policy: HealthPolicy | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if service is None:
            if pipeline is None:
                raise ValueError("provide a service, a pipeline, or both")
            service = pipeline.service
        self.service = service
        self.pipeline = pipeline
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self._subjects: dict[str, _Subject] = {
            _SERVICE: _Subject(service.telemetry, clock, self.policy)}
        for shard in getattr(service, "shards", ()) or ():
            self._subjects[f"shard{shard.index}"] = _Subject(
                shard.telemetry, clock, self.policy)

    # ------------------------------------------------------------- observation
    def observe(self, now: float | None = None) -> float:
        """Take one windowed sample of every telemetry source."""
        now = self._clock() if now is None else now
        self._refresh_runtime_subject()
        for subject in self._subjects.values():
            subject.observe(now)
        return now

    def _refresh_runtime_subject(self) -> None:
        """Track the process-global runtime registry as a windowed subject.

        The registry only exists while observability is enabled, and
        enabling/disabling swaps the object — so it is resolved on every
        observation rather than pinned at construction.  Its windowed
        series feed informational reasons only (e.g. delta-sampler cache
        effectiveness); a missing registry simply drops them.
        """
        registry = runtime.get_metrics()
        if registry is None:
            self._subjects.pop(_RUNTIME, None)
            return
        subject = self._subjects.get(_RUNTIME)
        if subject is None or subject.registry is not registry:
            self._subjects[_RUNTIME] = _Subject(registry, self._clock,
                                                self.policy)

    def _subject_for_building(self, building_id: str) -> _Subject:
        shard_for = getattr(self.service, "shard_for", None)
        if shard_for is not None:
            return self._subjects[f"shard{shard_for(building_id).index}"]
        return self._subjects[_SERVICE]

    # ----------------------------------------------------------- reason fusion
    def _latency_reasons(self, subject: _Subject,
                         now: float) -> tuple[list[HealthReason],
                                              dict[str, float]]:
        policy = self.policy
        count = subject.latency.count(now=now)
        tail = subject.latency.percentile(policy.tail_quantile, now=now)
        metrics = {"tail_latency_seconds": tail,
                   "latency_observations": float(count)}
        reasons: list[HealthReason] = []
        if count >= policy.min_latency_observations:
            quantile = f"p{policy.tail_quantile * 100:g}"
            if tail > policy.unhealthy_tail_latency_seconds:
                reasons.append(HealthReason(
                    code="tail_latency", severity="unhealthy",
                    detail=f"{quantile} latency {tail * 1e3:.0f} ms over the "
                           f"last {policy.window_seconds:g}s exceeds the "
                           f"outage threshold",
                    value=tail,
                    threshold=policy.unhealthy_tail_latency_seconds))
            elif tail > policy.degraded_tail_latency_seconds:
                reasons.append(HealthReason(
                    code="tail_latency", severity="degraded",
                    detail=f"{quantile} latency {tail * 1e3:.0f} ms over the "
                           f"last {policy.window_seconds:g}s exceeds the "
                           f"target",
                    value=tail,
                    threshold=policy.degraded_tail_latency_seconds))
        return reasons, metrics

    def _cache_reasons(self, subject: _Subject,
                       now: float) -> tuple[list[HealthReason],
                                            dict[str, float]]:
        policy = self.policy
        hits = subject.window_delta("cache_hits_total", now)
        misses = subject.window_delta("cache_misses_total", now)
        lookups = hits + misses
        hit_rate = hits / lookups if lookups > 0 else 0.0
        metrics = {"cache_hit_rate": hit_rate,
                   "cache_lookups": float(lookups)}
        reasons: list[HealthReason] = []
        if (lookups >= policy.min_cache_lookups
                and hit_rate < policy.min_cache_hit_rate):
            reasons.append(HealthReason(
                code="cache_hit_rate", severity="degraded",
                detail=f"cache hit rate {hit_rate:.1%} over "
                       f"{lookups:.0f} recent lookups is below the floor",
                value=hit_rate, threshold=policy.min_cache_hit_rate))
        return reasons, metrics

    def _rejection_reasons(self, subject: _Subject,
                           now: float) -> tuple[list[HealthReason],
                                                dict[str, float]]:
        policy = self.policy
        rejections = subject.window_delta("rejections_total", now)
        requests = subject.window_delta("requests_total", now)
        rate = rejections / requests if requests > 0 else 0.0
        metrics = {"rejection_rate": rate,
                   "recent_requests": float(requests)}
        reasons: list[HealthReason] = []
        if requests >= policy.min_routing_observations:
            if rate > policy.unhealthy_rejection_rate:
                reasons.append(HealthReason(
                    code="rejection_rate", severity="unhealthy",
                    detail=f"router rejected {rate:.1%} of "
                           f"{requests:.0f} recent requests",
                    value=rate, threshold=policy.unhealthy_rejection_rate))
            elif rate > policy.degraded_rejection_rate:
                reasons.append(HealthReason(
                    code="rejection_rate", severity="degraded",
                    detail=f"router rejected {rate:.1%} of "
                           f"{requests:.0f} recent requests",
                    value=rate, threshold=policy.degraded_rejection_rate))
        return reasons, metrics

    def _building_stream_reasons(self, building_id: str,
                                 now: float) -> tuple[list[HealthReason],
                                                      dict[str, float]]:
        """Drift-latch, retrain-backlog and swap-age signals (pipeline only)."""
        reasons: list[HealthReason] = []
        metrics: dict[str, float] = {}
        if self.pipeline is None:
            return reasons, metrics
        policy = self.policy
        latched = self.pipeline.drift.latched_kinds(building_id)
        for kind in latched:
            reasons.append(HealthReason(
                code=f"drift_latched:{kind.value}", severity="degraded",
                detail=f"drift detector latched {kind.value} for "
                       f"building {building_id!r}"))
        scheduler = self.pipeline.scheduler
        pending = scheduler.pending.get(building_id)
        if pending is not None or building_id in scheduler.inflight:
            state = "in flight" if building_id in scheduler.inflight \
                else f"pending ({pending})"
            reasons.append(HealthReason(
                code="retrain_pending", severity="info",
                detail=f"retrain {state} for building {building_id!r}"))
        # getattr: schedulers predating the failure-domain layer (and the
        # duck-typed fakes in tests) have no breaker surface.
        breaker_state = getattr(scheduler, "breaker_state", None)
        if breaker_state is not None:
            state = breaker_state(building_id)
            if state != "closed":
                failures = scheduler.consecutive_failures(building_id)
                metrics["retrain_consecutive_failures"] = float(failures)
                retry = scheduler.retry_in(building_id, now=now)
                if state == "open":
                    # Serving still answers from the stale model, but the
                    # building's learning loop is down — that is an
                    # unhealthy building, not a degraded one.
                    detail = (f"retrain circuit open for building "
                              f"{building_id!r} after {failures} consecutive "
                              "failures")
                    if retry is not None:
                        detail += f"; next probe in {retry:.0f}s"
                    reasons.append(HealthReason(
                        code="retrain_circuit_open", severity="unhealthy",
                        detail=detail, value=float(failures)))
                else:
                    reasons.append(HealthReason(
                        code="retrain_circuit_half_open", severity="info",
                        detail=f"probe retrain in flight for building "
                               f"{building_id!r} after {failures} "
                               "consecutive failures"))
        age = scheduler.last_swap_age(building_id, now=now)
        if age is not None:
            metrics["last_swap_age_seconds"] = age
        if (latched and policy.retrain_overdue_seconds is not None
                and age is not None
                and age > policy.retrain_overdue_seconds):
            reasons.append(HealthReason(
                code="retrain_overdue", severity="degraded",
                detail=f"building {building_id!r} has drift latched but its "
                       f"last hot swap is {age:.0f}s old",
                value=age, threshold=policy.retrain_overdue_seconds))
        return reasons, metrics

    def _delta_sampler_reasons(self, now: float) -> tuple[list[HealthReason],
                                                          dict[str, float]]:
        """Cold-path delta-sampler cache effectiveness (info-severity only).

        Reads the process-global runtime counters: compositions fully served
        from the cached base sampler/weights count as hits, compositions
        that had to (re)build a base part as rebuilds.  A low hit rate means
        the base graph is churning under the cold path (delta mode is
        paying exact-mode prices); that is worth surfacing, but it is a
        performance observation, not a correctness problem — the reason is
        ``"info"`` severity and never moves a verdict.
        """
        reasons: list[HealthReason] = []
        metrics: dict[str, float] = {}
        subject = self._subjects.get(_RUNTIME)
        if subject is None:
            return reasons, metrics
        hits = subject.window_delta("delta_sampler_hits_total", now)
        rebuilds = subject.window_delta("delta_sampler_rebuilds_total", now)
        composed = hits + rebuilds
        if composed <= 0:
            return reasons, metrics
        hit_rate = hits / composed
        metrics["delta_sampler_hit_rate"] = hit_rate
        metrics["delta_sampler_composed"] = composed
        reasons.append(HealthReason(
            code="delta_sampler_cache", severity="info",
            detail=f"delta negative sampler served {hit_rate:.1%} of "
                   f"{composed:.0f} recent compositions from cached base "
                   f"tables",
            value=hit_rate))
        return reasons, metrics

    def _compute_pool_reasons(self, now: float) -> tuple[list[HealthReason],
                                                         dict[str, float]]:
        """Compute-pool dispatch and snapshot-shipping health (info only).

        Reads the service-level counters the pool records (both the
        one-lock and the sharded service construct their shared pool with
        the service telemetry): recent dispatch rate, and what fraction of
        dispatches reused a snapshot already resident on the worker rather
        than re-shipping the pickled model.  A low snapshot hit rate means
        swap churn is outpacing the shipping economics — worth surfacing,
        but a cost observation, not a correctness problem — so the reason
        is ``"info"`` severity and never moves a verdict.  Services
        without a pool (``compute_workers=0``) emit nothing.
        """
        reasons: list[HealthReason] = []
        metrics: dict[str, float] = {}
        if getattr(self.service, "compute_pool", None) is None:
            return reasons, metrics
        subject = self._subjects[_SERVICE]
        dispatches = subject.window_delta("compute_pool_dispatch_total", now)
        if dispatches <= 0:
            return reasons, metrics
        ships = subject.window_delta("compute_pool_snapshot_ships_total", now)
        restarts = subject.window_delta("compute_pool_worker_restarts_total",
                                        now)
        hit_rate = max(0.0, dispatches - ships) / dispatches
        metrics["compute_pool_dispatch_rate"] = (
            dispatches / self.policy.window_seconds)
        metrics["compute_pool_snapshot_hit_rate"] = hit_rate
        if restarts > 0:
            metrics["compute_pool_recent_restarts"] = restarts
        detail = (f"compute pool dispatched {dispatches:.0f} task(s) in the "
                  f"last {self.policy.window_seconds:g}s; {hit_rate:.1%} "
                  f"reused a resident model snapshot")
        if restarts > 0:
            detail += f"; {restarts:.0f} worker restart(s)"
        reasons.append(HealthReason(code="compute_pool", severity="info",
                                    detail=detail, value=hit_rate))
        return reasons, metrics

    # -------------------------------------------------------------- scorecards
    def building_scorecard(self, building_id: str,
                           now: float) -> Scorecard:
        subject = self._subject_for_building(building_id)
        reasons: list[HealthReason] = []
        metrics: dict[str, float] = {}
        for part_reasons, part_metrics in (
                self._building_stream_reasons(building_id, now),
                self._latency_reasons(subject, now),
                self._cache_reasons(subject, now),
                self._delta_sampler_reasons(now)):
            reasons.extend(part_reasons)
            metrics.update(part_metrics)
        return Scorecard(
            subject=building_id,
            status=_verdict(tuple(reasons),
                            self.policy.unhealthy_reason_count),
            reasons=tuple(reasons), metrics=metrics)

    def shard_scorecard(self, shard, now: float) -> Scorecard:
        subject = self._subjects[f"shard{shard.index}"]
        reasons: list[HealthReason] = []
        metrics: dict[str, float] = {
            "buildings": float(len(shard.registry.building_ids)),
            "queue_depth": float(shard.batcher.pending_count),
        }
        for part_reasons, part_metrics in (
                self._latency_reasons(subject, now),
                self._cache_reasons(subject, now),
                self._compute_pool_reasons(now)):
            reasons.extend(part_reasons)
            metrics.update(part_metrics)
        return Scorecard(
            subject=f"shard{shard.index}",
            status=_verdict(tuple(reasons),
                            self.policy.unhealthy_reason_count),
            reasons=tuple(reasons), metrics=metrics)

    def service_scorecard(self, now: float) -> Scorecard:
        subject = self._subjects[_SERVICE]
        reasons, metrics = self._rejection_reasons(subject, now)
        pool_reasons, pool_metrics = self._compute_pool_reasons(now)
        reasons.extend(pool_reasons)
        metrics.update(pool_metrics)
        if self.pipeline is not None:
            # The registry-wide rejection latch has no building to pin.
            for kind in self.pipeline.drift.latched_kinds(None):
                reasons.append(HealthReason(
                    code=f"drift_latched:{kind.value}", severity="degraded",
                    detail=f"registry-wide drift latched: {kind.value}"))
            stale = subject.window_delta("retrains_stale_total", now)
            errors = subject.window_delta("retrain_errors_total", now)
            metrics["recent_stale_retrains"] = stale
            metrics["recent_retrain_errors"] = errors
            if errors > 0:
                reasons.append(HealthReason(
                    code="retrain_errors", severity="degraded",
                    detail=f"{errors:.0f} retrain(s) failed in the last "
                           f"{self.policy.window_seconds:g}s",
                    value=errors, threshold=0.0))
        return Scorecard(
            subject=_SERVICE,
            status=_verdict(tuple(reasons),
                            self.policy.unhealthy_reason_count),
            reasons=tuple(reasons), metrics=metrics)

    # ------------------------------------------------------------------ report
    def report(self, now: float | None = None) -> dict[str, object]:
        """Observe, then render the full ``/healthz`` payload.

        The aggregate ``status`` is the worst verdict across the service
        scorecard, every building and every shard, so a single unhealthy
        building is visible from the fleet-level colour.
        """
        now = self.observe(now)
        buildings = {building_id: self.building_scorecard(building_id, now)
                     for building_id in sorted(self.service.building_ids)}
        shards = {f"shard{shard.index}": self.shard_scorecard(shard, now)
                  for shard in getattr(self.service, "shards", ()) or ()}
        service = self.service_scorecard(now)
        overall = _worst(service.status,
                         *(card.status for card in buildings.values()),
                         *(card.status for card in shards.values()))
        return {
            "status": overall.value,
            "checked_at": now,
            "window_seconds": self.policy.window_seconds,
            "service": service.to_dict(),
            "buildings": {building_id: card.to_dict()
                          for building_id, card in buildings.items()},
            "shards": {name: card.to_dict()
                       for name, card in shards.items()},
        }
