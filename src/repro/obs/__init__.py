"""Observability: span tracing, a shared metrics registry, lifecycle logs.

Dependency-free (stdlib only).  Three pillars:

* :mod:`repro.obs.tracer` — deterministic span tracer (counter-based IDs,
  injected clock, bounded ring buffer, JSONL export).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the registry behind
  ``ServingTelemetry`` and now shared by the stream pipeline, retrain
  executor, sampler cache, overlay and training kernels; Prometheus-text
  and JSON exposition.
* :mod:`repro.obs.log` — structured JSON lifecycle events on the stdlib
  ``repro.obs`` logger.

The global on/off switch lives in :mod:`repro.obs.runtime`; hot paths use
its module-level helpers (``span``/``stage``/``metric_increment``) which
collapse to near-free no-ops while observability is disabled.
"""

from .log import LOGGER_NAME, log_event
from .metrics import LatencyHistogram, MetricsRegistry
from .runtime import (active_tracer, current_trace_id, disable, enable,
                      enabled, get_metrics, metric_increment, observe,
                      set_gauge, span, stage)
from .tracer import Span, SpanTracer, format_span_tree, stage_breakdown

__all__ = [
    "LatencyHistogram", "MetricsRegistry",
    "Span", "SpanTracer", "format_span_tree", "stage_breakdown",
    "LOGGER_NAME", "log_event",
    "enable", "disable", "enabled", "active_tracer", "get_metrics",
    "span", "stage", "current_trace_id", "metric_increment", "observe",
    "set_gauge",
]
