"""Observability: tracing, metrics, time series, SLOs, health, HTTP surface.

Dependency-free (stdlib only).  The pillars:

* :mod:`repro.obs.tracer` — deterministic span tracer (counter-based IDs,
  injected clock, bounded ring buffer, JSONL export, critical-path query).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the registry behind
  ``ServingTelemetry`` and shared by the stream pipeline, retrain
  executor, sampler cache, overlay and training kernels; Prometheus-text
  and JSON exposition (with merged per-shard views).
* :mod:`repro.obs.log` — structured JSON lifecycle events on the stdlib
  ``repro.obs`` logger.
* :mod:`repro.obs.timeseries` — bounded metric time series sampled from a
  registry on an injected clock, with EWMA/z-score anomaly scoring and
  windowed histogram percentiles.
* :mod:`repro.obs.slo` — declarative SLO objectives with multi-window
  error-budget burn-rate alerting.
* :mod:`repro.obs.health` — per-building / per-shard health scorecards
  fusing drift, routing, cache, latency and retrain signals.
* :mod:`repro.obs.server` — :class:`ObsServer`, the stdlib HTTP endpoint
  serving ``/metrics``, ``/healthz``, ``/slo`` and ``/spans``.

The global on/off switch lives in :mod:`repro.obs.runtime`; hot paths use
its module-level helpers (``span``/``stage``/``metric_increment``) which
collapse to near-free no-ops while observability is disabled.
"""

from .health import (HealthMonitor, HealthPolicy, HealthReason, HealthStatus,
                     Scorecard)
from .log import LOGGER_NAME, log_event
from .metrics import LatencyHistogram, MetricsRegistry
from .runtime import (active_tracer, current_trace_id, disable, enable,
                      enabled, get_metrics, metric_increment, observe,
                      set_gauge, span, stage)
from .server import ObsServer
from .slo import (ErrorRatioObjective, GaugeCeilingObjective,
                  LatencyObjective, ObjectiveStatus, SLOMonitor,
                  default_serving_objectives)
from .timeseries import (HistogramWindow, MetricsSampler, TimeSeries,
                         flatten_snapshot)
from .tracer import (Span, SpanTracer, critical_path, format_span_tree,
                     stage_breakdown)

__all__ = [
    "LatencyHistogram", "MetricsRegistry",
    "Span", "SpanTracer", "critical_path", "format_span_tree",
    "stage_breakdown",
    "LOGGER_NAME", "log_event",
    "enable", "disable", "enabled", "active_tracer", "get_metrics",
    "span", "stage", "current_trace_id", "metric_increment", "observe",
    "set_gauge",
    "TimeSeries", "MetricsSampler", "HistogramWindow", "flatten_snapshot",
    "ObjectiveStatus", "LatencyObjective", "ErrorRatioObjective",
    "GaugeCeilingObjective", "SLOMonitor", "default_serving_objectives",
    "HealthStatus", "HealthReason", "HealthPolicy", "Scorecard",
    "HealthMonitor",
    "ObsServer",
]
