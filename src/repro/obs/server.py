"""Stdlib HTTP endpoint serving metrics, health, SLO status and spans.

:class:`ObsServer` is the last mile of the observability stack: a
``ThreadingHTTPServer`` (no third-party dependencies) that any serving
façade — :class:`FloorServingService`, :class:`ShardedServingService` —
or a :class:`ContinuousLearningPipeline` plugs into, exposing:

* ``GET /metrics`` — Prometheus text exposition of the service telemetry;
  for a sharded service the per-shard registries are merged into one
  fleet view.
* ``GET /healthz`` — the :class:`~repro.obs.health.HealthMonitor` report:
  aggregate status plus per-building and per-shard scorecards with
  machine-readable reasons.  Responds ``200`` while the fleet is healthy
  or degraded and ``503`` when unhealthy, so plain HTTP probes work.
* ``GET /slo`` — the :class:`~repro.obs.slo.SLOMonitor` payload: each
  objective's verdict, burn rates and the latched alert set.
* ``GET /spans`` — the most recent finished spans as JSON lines
  (``?limit=N`` caps the count), read from the runtime's active tracer.

The server binds an ephemeral port by default (``port=0``) so tests and
demos never collide; ``server.port`` reports the bound port after
:meth:`~ObsServer.start`.  Everything here reads the watched objects
through their public duck surface — this module must not import
:mod:`repro.serving` or :mod:`repro.stream` (they import :mod:`repro.obs`).
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from . import runtime
from .health import HealthMonitor
from .log import log_event
from .slo import SLOMonitor, default_serving_objectives

__all__ = ["ObsServer"]

#: Content type mandated by the Prometheus text exposition format.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_DEFAULT_SPAN_LIMIT = 256


class _ObsRequestHandler(BaseHTTPRequestHandler):
    server_version = "ReproObs/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        obs: "ObsServer" = self.server.obs  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        try:
            if parsed.path == "/metrics":
                self._send(200, _PROMETHEUS_CONTENT_TYPE,
                           obs.render_metrics().encode("utf-8"))
            elif parsed.path == "/healthz":
                report = obs.health.report()
                status = 503 if report["status"] == "unhealthy" else 200
                self._send_json(status, report)
            elif parsed.path == "/slo":
                self._send_json(200, obs.slo.check())
            elif parsed.path == "/spans":
                query = parse_qs(parsed.query)
                limit = int(query.get("limit", [_DEFAULT_SPAN_LIMIT])[0])
                self._send(200, "application/jsonl; charset=utf-8",
                           obs.render_spans(limit).encode("utf-8"))
            else:
                self._send_json(404, {"error": "not found",
                                      "path": parsed.path,
                                      "endpoints": ["/metrics", "/healthz",
                                                    "/slo", "/spans"]})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": type(exc).__name__,
                                  "detail": str(exc)})

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, "application/json; charset=utf-8",
                   json.dumps(payload, sort_keys=False).encode("utf-8"))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # A scrape every few seconds would spam stderr; the structured
        # lifecycle events on the ``repro.obs`` logger replace access logs.
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Re-binding the same observability port across rapid service restarts
    # must not trip TIME_WAIT.
    allow_reuse_address = True


class ObsServer:
    """Serves ``/metrics``, ``/healthz``, ``/slo`` and ``/spans`` over HTTP.

    Parameters
    ----------
    service:
        The serving façade to expose (anything with ``telemetry`` and
        ``building_ids``; a ``shards`` attribute adds the merged fleet
        view).  Defaults to ``pipeline.service``.
    pipeline:
        Optional :class:`ContinuousLearningPipeline`; enriches the health
        report with drift/retrain state.
    health / slo:
        Pre-built monitors; by default a :class:`HealthMonitor` over the
        watched objects and an :class:`SLOMonitor` with
        :func:`default_serving_objectives` are created on the shared
        ``clock``.
    tracer:
        Span source for ``/spans``.  Defaults to whatever tracer the
        :mod:`repro.obs.runtime` switch currently exposes — resolved per
        request, so enabling observability after the server started works.
    host / port:
        Bind address; ``port=0`` (default) picks an ephemeral port,
        reported by :attr:`port` after :meth:`start`.

    Use as a context manager or call :meth:`start`/:meth:`close`; the
    accept loop runs on a daemon thread and each request is handled on its
    own thread, so a scrape can never block the serving hot path.
    """

    def __init__(self, service=None, pipeline=None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 health: HealthMonitor | None = None,
                 slo: SLOMonitor | None = None,
                 tracer=None, prefix: str = "repro",
                 clock: Callable[[], float] = time.monotonic) -> None:
        if service is None:
            if pipeline is None:
                raise ValueError("provide a service, a pipeline, or both")
            service = pipeline.service
        self.service = service
        self.pipeline = pipeline
        self.prefix = prefix
        self._tracer = tracer
        self.health = health or HealthMonitor(service=service,
                                              pipeline=pipeline, clock=clock)
        self.slo = slo or SLOMonitor(self._merged_snapshot,
                                     default_serving_objectives(),
                                     clock=clock)
        self._host = host
        self._requested_port = port
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- renderers
    def _shard_registries(self):
        return [shard.telemetry
                for shard in getattr(self.service, "shards", ()) or ()]

    def _merged_snapshot(self) -> dict[str, object]:
        return self.service.telemetry.merged_snapshot(self._shard_registries())

    def render_metrics(self) -> str:
        """The Prometheus payload ``/metrics`` serves (shards merged in).

        The process-global runtime registry (sampler-cache and
        ``delta_sampler_*`` counters, overlay totals — everything the core
        layers record through :func:`repro.obs.runtime.metric_increment`)
        is merged in when observability is enabled, so one scrape covers
        both the serving telemetry and the core counters.
        """
        others = list(self._shard_registries())
        runtime_metrics = runtime.get_metrics()
        if (runtime_metrics is not None
                and runtime_metrics is not self.service.telemetry
                and all(runtime_metrics is not other for other in others)):
            others.append(runtime_metrics)
        return self.service.telemetry.to_prometheus_text(
            self.prefix, others=others)

    def render_spans(self, limit: int = _DEFAULT_SPAN_LIMIT) -> str:
        """The most recent finished spans as JSON lines, newest last."""
        tracer = self._tracer or runtime.active_tracer()
        if tracer is None or limit <= 0:
            return ""
        spans = tracer.spans()[-limit:]
        return "".join(json.dumps(span.to_dict(), sort_keys=False) + "\n"
                       for span in spans)

    # -------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with 0)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> "ObsServer":
        """Bind and start serving on a daemon thread; idempotent."""
        if self._httpd is not None:
            return self
        httpd = _Server((self._host, self._requested_port),
                        _ObsRequestHandler)
        httpd.obs = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(target=httpd.serve_forever,
                                        name="obs-server", daemon=True)
        self._thread.start()
        log_event("obs_server_started", url=self.url)
        return self

    def close(self) -> None:
        """Stop the accept loop and release the port; idempotent."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        log_event("obs_server_stopped")

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
