"""Declarative SLOs with multi-window error-budget burn-rate alerts.

An SLO here is a small set of *objectives* evaluated against metrics
snapshots:

* :class:`LatencyObjective` — a latency-percentile target on one of the
  registry's histograms (``p95 of request_seconds <= 250ms``);
* :class:`ErrorRatioObjective` — a ceiling on the ratio of two counters
  (``rejections_total / requests_total <= 5%``), with genuine
  *error-budget burn-rate* semantics: the ceiling is the budget, and the
  recent bad-fraction over a trailing window divided by the budget is the
  burn rate;
* :class:`GaugeCeilingObjective` — a ceiling on a gauge (retrain
  staleness, queue depth...).

:class:`SLOMonitor` samples a snapshot source on an injected clock
(through :class:`~repro.obs.timeseries.MetricsSampler`), evaluates every
objective, and runs the standard multi-window burn-rate alerting rule on
the ratio objectives: an alert fires only when the burn rate exceeds the
threshold over *both* a fast window (default 5 minutes — catches it
quickly) and a slow window (default 1 hour — suppresses blips), and
resolves as soon as either window recovers.  Alert transitions are
latched and emitted as structured ``repro.obs`` events
(``slo_burn_rate_alert`` / ``slo_burn_rate_resolved``), so the alerting
contract is machine-readable end to end.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Union

from .log import log_event
from .metrics import MetricsRegistry
from .timeseries import MetricsSampler

__all__ = [
    "ObjectiveStatus", "LatencyObjective", "ErrorRatioObjective",
    "GaugeCeilingObjective", "SLOMonitor", "default_serving_objectives",
]

#: Histogram snapshot keys a latency objective can target.
_QUANTILE_KEYS = {0.5: "p50", 0.95: "p95", 0.99: "p99"}


@dataclass(frozen=True)
class ObjectiveStatus:
    """One objective's verdict at one evaluation instant."""

    name: str
    kind: str                      # "latency" | "error_ratio" | "gauge"
    ok: bool
    value: float
    target: float
    detail: str
    #: Burn rates over the monitor's fast/slow windows; ``None`` for
    #: objectives without budget semantics (latency, gauges).
    burn_fast: float | None = None
    burn_slow: float | None = None
    alerting: bool = False

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "name": self.name, "kind": self.kind, "ok": self.ok,
            "value": self.value, "target": self.target, "detail": self.detail,
        }
        if self.burn_fast is not None:
            payload["burn_fast"] = self.burn_fast
            payload["burn_slow"] = self.burn_slow
            payload["alerting"] = self.alerting
        return payload


class LatencyObjective:
    """``quantile`` of one latency histogram must stay at or below target."""

    kind = "latency"

    def __init__(self, name: str, threshold_seconds: float,
                 histogram: str = "request_seconds",
                 quantile: float = 0.95) -> None:
        if quantile not in _QUANTILE_KEYS:
            raise ValueError(f"quantile must be one of "
                             f"{sorted(_QUANTILE_KEYS)} (the quantiles a "
                             "registry snapshot reports)")
        if threshold_seconds <= 0.0:
            raise ValueError("threshold_seconds must be positive")
        self.name = name
        self.histogram = histogram
        self.quantile = quantile
        self.threshold_seconds = float(threshold_seconds)

    def evaluate(self, snapshot: Mapping) -> ObjectiveStatus:
        latencies = snapshot.get("latency", {})
        entry = latencies.get(self.histogram, {})
        value = float(entry.get(_QUANTILE_KEYS[self.quantile], 0.0))
        ok = value <= self.threshold_seconds
        return ObjectiveStatus(
            name=self.name, kind=self.kind, ok=ok, value=value,
            target=self.threshold_seconds,
            detail=f"{_QUANTILE_KEYS[self.quantile]}({self.histogram}) = "
                   f"{value * 1e3:.1f} ms (target <= "
                   f"{self.threshold_seconds * 1e3:.1f} ms)")


class ErrorRatioObjective:
    """``numerator / denominator`` must stay at or below ``max_ratio``.

    ``max_ratio`` doubles as the *error budget*: a burn rate of 1.0 means
    the recent bad-fraction consumes the budget exactly as fast as the SLO
    allows; the monitor alerts when the burn rate exceeds its threshold on
    both of its windows.  ``min_observations`` suppresses the point-in-time
    verdict until the denominator has seen that many events, so an empty
    service is not "failing" its error SLO.
    """

    kind = "error_ratio"

    def __init__(self, name: str, max_ratio: float,
                 numerator: str = "rejections_total",
                 denominator: str = "requests_total",
                 min_observations: int = 1) -> None:
        if not 0.0 < max_ratio <= 1.0:
            raise ValueError("max_ratio must be in (0, 1]")
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        self.name = name
        self.numerator = numerator
        self.denominator = denominator
        self.max_ratio = float(max_ratio)
        self.min_observations = min_observations

    def evaluate(self, snapshot: Mapping) -> ObjectiveStatus:
        counters = snapshot.get("counters", {})
        bad = float(counters.get(self.numerator, 0))
        total = float(counters.get(self.denominator, 0))
        ratio = bad / total if total > 0 else 0.0
        ok = total < self.min_observations or ratio <= self.max_ratio
        return ObjectiveStatus(
            name=self.name, kind=self.kind, ok=ok, value=ratio,
            target=self.max_ratio,
            detail=f"{self.numerator}/{self.denominator} = {ratio:.1%} over "
                   f"{total:.0f} events (budget {self.max_ratio:.1%})")

    def burn_rate(self, sampler: MetricsSampler, window_seconds: float,
                  now: float | None = None) -> float:
        """Bad-fraction over the trailing window, divided by the budget."""
        bad = sampler.series(f"counters.{self.numerator}").increase(
            window_seconds, now=now)
        total = sampler.series(f"counters.{self.denominator}").increase(
            window_seconds, now=now)
        if total <= 0.0:
            return 0.0
        return (bad / total) / self.max_ratio


class GaugeCeilingObjective:
    """A gauge must stay at or below a ceiling (staleness bounds, depths)."""

    kind = "gauge"

    def __init__(self, name: str, gauge: str, max_value: float) -> None:
        self.name = name
        self.gauge = gauge
        self.max_value = float(max_value)

    def evaluate(self, snapshot: Mapping) -> ObjectiveStatus:
        value = float(snapshot.get("gauges", {}).get(self.gauge, 0.0))
        ok = value <= self.max_value
        return ObjectiveStatus(
            name=self.name, kind=self.kind, ok=ok, value=value,
            target=self.max_value,
            detail=f"{self.gauge} = {value:g} (ceiling {self.max_value:g})")


def default_serving_objectives(
        p95_seconds: float = 0.5,
        rejection_budget: float = 0.1) -> list:
    """A sane starter SLO for any serving façade.

    A p95 request-latency target and a routing-rejection error budget —
    both read from counters/histograms every serving stack already
    records.  Callers append workload-specific objectives (retrain
    staleness, stream rejection budgets) on top.
    """
    return [
        LatencyObjective("request_latency_p95", p95_seconds,
                         histogram="request_seconds", quantile=0.95),
        ErrorRatioObjective("routing_rejections", rejection_budget,
                            numerator="rejections_total",
                            denominator="requests_total",
                            min_observations=20),
    ]


class SLOMonitor:
    """Evaluates objectives against a sampled snapshot source; raises alerts.

    Each :meth:`check` call takes one sample (deduplicated under an
    unmoved clock), evaluates every objective point-in-time, computes
    fast/slow burn rates for the ratio objectives, updates the latched
    alert set and emits transition events.  The returned payload is what
    ``/slo`` serves.
    """

    def __init__(self,
                 source: Union[MetricsRegistry, Callable[[], Mapping]],
                 objectives: Sequence,
                 clock: Callable[[], float] = time.monotonic,
                 fast_window_seconds: float = 300.0,
                 slow_window_seconds: float = 3600.0,
                 burn_rate_threshold: float = 2.0,
                 capacity: int = 4096) -> None:
        if fast_window_seconds <= 0.0 or slow_window_seconds <= 0.0:
            raise ValueError("window lengths must be positive")
        if slow_window_seconds < fast_window_seconds:
            raise ValueError("slow window must not be shorter than the fast "
                             "window")
        if burn_rate_threshold <= 0.0:
            raise ValueError("burn_rate_threshold must be positive")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.objectives = list(objectives)
        self._clock = clock
        self.fast_window_seconds = float(fast_window_seconds)
        self.slow_window_seconds = float(slow_window_seconds)
        self.burn_rate_threshold = float(burn_rate_threshold)
        self.sampler = MetricsSampler(source, clock=clock, capacity=capacity)
        self._alerting: set[str] = set()
        self.alerts_total = 0

    @property
    def alerting(self) -> frozenset[str]:
        """Names of the objectives whose burn-rate alert is currently latched."""
        return frozenset(self._alerting)

    def check(self) -> dict[str, object]:
        """Sample, evaluate, update alerts; returns the ``/slo`` payload."""
        now = self._clock()
        snapshot = self.sampler.sample()
        statuses: list[ObjectiveStatus] = []
        for objective in self.objectives:
            status = objective.evaluate(snapshot)
            if isinstance(objective, ErrorRatioObjective):
                status = self._update_alert(objective, status, now)
            statuses.append(status)
        return {
            "checked_at": now,
            "fast_window_seconds": self.fast_window_seconds,
            "slow_window_seconds": self.slow_window_seconds,
            "burn_rate_threshold": self.burn_rate_threshold,
            "ok": all(status.ok for status in statuses),
            "alerting": sorted(self._alerting),
            "objectives": [status.to_dict() for status in statuses],
        }

    # Alias so dashboards and the HTTP layer read naturally.
    status = check

    def _update_alert(self, objective: ErrorRatioObjective,
                      status: ObjectiveStatus,
                      now: float) -> ObjectiveStatus:
        burn_fast = objective.burn_rate(self.sampler,
                                        self.fast_window_seconds, now=now)
        burn_slow = objective.burn_rate(self.sampler,
                                        self.slow_window_seconds, now=now)
        # The classic multi-window rule: fast window for detection speed,
        # slow window so a short blip inside an otherwise healthy hour
        # cannot page anyone.
        alerting = (burn_fast > self.burn_rate_threshold
                    and burn_slow > self.burn_rate_threshold)
        was_alerting = objective.name in self._alerting
        if alerting and not was_alerting:
            self._alerting.add(objective.name)
            self.alerts_total += 1
            log_event("slo_burn_rate_alert", objective=objective.name,
                      burn_fast=burn_fast, burn_slow=burn_slow,
                      threshold=self.burn_rate_threshold,
                      budget=objective.max_ratio)
        elif not alerting and was_alerting:
            self._alerting.discard(objective.name)
            log_event("slo_burn_rate_resolved", objective=objective.name,
                      burn_fast=burn_fast, burn_slow=burn_slow,
                      threshold=self.burn_rate_threshold)
        return ObjectiveStatus(
            name=status.name, kind=status.kind,
            ok=status.ok and not alerting, value=status.value,
            target=status.target, detail=status.detail,
            burn_fast=burn_fast, burn_slow=burn_slow, alerting=alerting)
