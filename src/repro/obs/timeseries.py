"""Bounded time series over metrics snapshots, with anomaly scoring.

PR 6 gave every subsystem a :class:`~repro.obs.metrics.MetricsRegistry`;
this module is what turns those point-in-time snapshots into *history* an
operator (or the SLO/health layers) can reason about:

* :class:`TimeSeries` — a ring buffer of ``(timestamp, value)`` samples
  with rate-of-change helpers for counters, EWMA smoothing, and EWMA
  z-score anomaly scoring — all dependency-free and deterministic, so a
  fake clock drives bit-identical scores in tests.
* :class:`MetricsSampler` — samples any snapshot source (a registry, a
  service's ``telemetry_snapshot``, a merged per-shard view) on an
  injected clock, flattening every numeric leaf into one named series.
* :class:`HistogramWindow` — trailing-window percentiles computed from
  cumulative :class:`~repro.obs.metrics.LatencyHistogram` bucket deltas,
  because a cumulative histogram never forgets a latency spike but a
  health verdict must recover once the spike passes.

Everything here is read-side only: sampling takes a snapshot (which copies
state under the registry's mutex) and never blocks serving threads beyond
that copy.
"""

from __future__ import annotations

import math
import time
from collections import deque
from collections.abc import Callable, Mapping
from typing import Union

from .metrics import LatencyHistogram, MetricsRegistry

__all__ = ["TimeSeries", "MetricsSampler", "HistogramWindow",
           "flatten_snapshot"]

#: Default ring capacity: at one sample per 5s scrape this is an hour of
#: history, enough to cover the slow burn-rate window at typical cadences.
_DEFAULT_CAPACITY = 720


class TimeSeries:
    """A bounded ring buffer of ``(timestamp, value)`` samples.

    Timestamps must be non-decreasing (they come from a monotonic clock);
    a sample carrying the same timestamp as the newest one *replaces* it,
    so re-sampling under a paused fake clock — or two scrapes racing the
    same second — never double-counts in the EWMA statistics.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (rates need two "
                             "samples)")
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: Timestamp of the first sample ever appended (survives ring
        #: eviction); :meth:`increase` uses it to tell a series *born*
        #: inside a window from one merely sampled once there.
        self._first_timestamp: float | None = None

    def append(self, timestamp: float, value: float) -> None:
        if self._samples:
            last_ts = self._samples[-1][0]
            if timestamp < last_ts:
                raise ValueError("timestamps must be non-decreasing")
            if timestamp == last_ts:
                self._samples[-1] = (timestamp, float(value))
                return
        if self._first_timestamp is None:
            self._first_timestamp = float(timestamp)
        self._samples.append((float(timestamp), float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def samples(self) -> list[tuple[float, float]]:
        """All retained ``(timestamp, value)`` pairs, oldest first."""
        return list(self._samples)

    def values(self) -> list[float]:
        return [value for _, value in self._samples]

    def last(self) -> tuple[float, float] | None:
        """The newest sample, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------- windowing
    def window(self, seconds: float,
               now: float | None = None) -> list[tuple[float, float]]:
        """Samples within the trailing ``seconds`` ending at ``now``.

        ``now`` defaults to the newest sample's timestamp.  A window that
        reaches past the retained history simply returns what is there —
        the standard bootstrapping behaviour while a monitor warms up.
        """
        if not self._samples:
            return []
        if now is None:
            now = self._samples[-1][0]
        cutoff = now - seconds
        return [(ts, value) for ts, value in self._samples if ts >= cutoff]

    def delta(self, seconds: float, now: float | None = None) -> float:
        """Newest-minus-oldest value over the trailing window.

        The window-rate primitive for *counters*: the increase observed
        over the last ``seconds``.  Needs at least two in-window samples;
        returns 0.0 otherwise.
        """
        window = self.window(seconds, now=now)
        if len(window) < 2:
            return 0.0
        return window[-1][1] - window[0][1]

    def increase(self, seconds: float, now: float | None = None) -> float:
        """Counter increase over the trailing window.

        Like :meth:`delta`, but counter-aware: a series whose first-ever
        sample lies inside the window is treated as having been zero when
        the window opened — counters are born at zero, and registries only
        materialise them on first increment, so a metric that first
        appears mid-window (the first rejection of a burst) must report
        its full value rather than 0.0.
        """
        window = self.window(seconds, now=now)
        if not window:
            return 0.0
        if now is None:
            now = window[-1][0]
        if (self._first_timestamp is not None
                and self._first_timestamp >= now - seconds):
            return window[-1][1]
        if len(window) < 2:
            return 0.0
        return window[-1][1] - window[0][1]

    def rate(self, seconds: float, now: float | None = None) -> float:
        """Per-second rate of change over the trailing window.

        Divides by the *observed* span between the first and last in-window
        samples, not the nominal window, so a half-filled window reports
        the true rate rather than under-reading by the missing half.
        """
        window = self.window(seconds, now=now)
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0.0:
            return 0.0
        return (window[-1][1] - window[0][1]) / elapsed

    # ------------------------------------------------------- anomaly scoring
    def ewma(self, alpha: float = 0.3) -> float:
        """Exponentially weighted moving average over all retained values."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not self._samples:
            return 0.0
        mean = self._samples[0][1]
        for _, value in list(self._samples)[1:]:
            mean += alpha * (value - mean)
        return mean

    def zscore(self, alpha: float = 0.3, min_history: int = 8) -> float:
        """EWMA z-score of the newest value against the *prior* history.

        Walks an EWMA mean and EWMA variance over every sample except the
        newest, then scores the newest value against them:
        ``(latest - mean) / std``.  Returns 0.0 while the history is
        shorter than ``min_history`` (an empty baseline scores everything
        as anomalous) and when the prior history has ~zero variance but
        the newest value matches it.  A genuinely flat history followed by
        a jump scores ``inf`` — maximally anomalous, which is the verdict
        an operator wants for "this counter never moved before".
        """
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if len(self._samples) < max(2, min_history):
            return 0.0
        values = self.values()
        latest, history = values[-1], values[:-1]
        mean = history[0]
        variance = 0.0
        for value in history[1:]:
            diff = value - mean
            increment = alpha * diff
            mean += increment
            variance = (1.0 - alpha) * (variance + diff * increment)
        std = math.sqrt(variance)
        if std == 0.0:
            return 0.0 if latest == mean else math.inf
        return (latest - mean) / std

    def anomaly_score(self, alpha: float = 0.3,
                      min_history: int = 8) -> float:
        """Absolute EWMA z-score of the newest value (0 = unremarkable)."""
        return abs(self.zscore(alpha=alpha, min_history=min_history))


def flatten_snapshot(snapshot: Mapping, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a snapshot dict.

    ``{"counters": {"hits": 3}, "latency": {"request_seconds":
    {"p95": 0.1}}}`` becomes ``{"counters.hits": 3.0,
    "latency.request_seconds.p95": 0.1}``.  Booleans and non-numeric
    leaves are skipped; nested dicts recurse.
    """
    flat: dict[str, float] = {}
    for key, value in snapshot.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_snapshot(value, prefix=f"{path}."))
    return flat


class MetricsSampler:
    """Samples a snapshot source into one :class:`TimeSeries` per metric.

    The source is either a :class:`MetricsRegistry` (its ``snapshot()`` is
    called) or any zero-argument callable returning a snapshot-shaped dict
    — a service's ``telemetry_snapshot`` bound method, a sharded service's
    merged view, or an enriched provider that adds gauges of its own.
    Sampling under an unmoved clock re-reads the source but replaces the
    newest sample instead of appending, so scrape-driven and test-driven
    sampling cannot double-count.
    """

    def __init__(self,
                 source: Union[MetricsRegistry, Callable[[], Mapping]],
                 clock: Callable[[], float] = time.monotonic,
                 capacity: int = _DEFAULT_CAPACITY) -> None:
        if isinstance(source, MetricsRegistry):
            self._source: Callable[[], Mapping] = source.snapshot
        else:
            self._source = source
        self._clock = clock
        self._capacity = capacity
        self._series: dict[str, TimeSeries] = {}
        self._last_snapshot: Mapping = {}

    def sample(self) -> Mapping:
        """Take one sample of every numeric leaf; returns the raw snapshot."""
        now = self._clock()
        snapshot = self._source()
        for name, value in flatten_snapshot(snapshot).items():
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(self._capacity)
            series.append(now, value)
        self._last_snapshot = snapshot
        return snapshot

    @property
    def last_snapshot(self) -> Mapping:
        """The raw snapshot of the most recent :meth:`sample` call."""
        return self._last_snapshot

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> TimeSeries:
        """The named series; an empty one when the metric was never seen."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(self._capacity)
        return series

    def anomalies(self, threshold: float = 3.0, alpha: float = 0.3,
                  min_history: int = 8) -> dict[str, float]:
        """Every series whose newest sample scores at least ``threshold``.

        The fleet-wide "what just changed?" query: returns
        ``{metric: score}`` sorted by descending score, so the most
        anomalous signal leads.
        """
        scored = {name: series.anomaly_score(alpha=alpha,
                                             min_history=min_history)
                  for name, series in self._series.items()}
        return dict(sorted(((name, score) for name, score in scored.items()
                            if score >= threshold),
                           key=lambda item: (-item[1], item[0])))


class HistogramWindow:
    """Trailing-window percentiles from cumulative histogram snapshots.

    A :class:`~repro.obs.metrics.LatencyHistogram` is cumulative: one
    latency spike raises its p95 for the rest of the process's life.
    Health verdicts need the *recent* tail, so this class retains periodic
    bucket-count snapshots and answers percentile queries on the
    difference between the newest snapshot and the one at the window's
    start — exactly the observations recorded inside the window.
    """

    def __init__(self, window_seconds: float = 300.0,
                 capacity: int = _DEFAULT_CAPACITY) -> None:
        if window_seconds <= 0.0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = float(window_seconds)
        self._snapshots: deque[tuple[float, tuple[int, ...], float]] = deque(
            maxlen=capacity)
        self._bounds: tuple[float, ...] | None = None

    def observe(self, timestamp: float,
                histogram: LatencyHistogram) -> None:
        """Retain one cumulative snapshot of ``histogram`` at ``timestamp``."""
        if self._bounds is None:
            self._bounds = histogram.bounds
        elif histogram.bounds != self._bounds:
            raise ValueError("histogram bounds changed between observations")
        counts = tuple(histogram.bucket_counts())
        if self._snapshots and self._snapshots[-1][0] == timestamp:
            self._snapshots[-1] = (timestamp, counts, histogram.max)
            return
        if self._snapshots and timestamp < self._snapshots[-1][0]:
            raise ValueError("timestamps must be non-decreasing")
        self._snapshots.append((timestamp, counts, histogram.max))

    def _window_delta(self, now: float | None) -> tuple[list[int], float]:
        if not self._snapshots:
            return [], 0.0
        if now is None:
            now = self._snapshots[-1][0]
        cutoff = now - self.window_seconds
        newest = self._snapshots[-1]
        # The anchor is the newest snapshot at or before the cutoff: the
        # delta against it covers exactly the observations recorded after
        # the window opened.  With no snapshot that old yet (warm-up), the
        # oldest retained snapshot anchors a best-effort shorter window.
        anchor = None
        for snapshot in self._snapshots:
            if snapshot[0] <= cutoff:
                anchor = snapshot
            else:
                break
        if anchor is None:
            anchor = self._snapshots[0]
        if anchor is newest:
            # One snapshot total: everything in it counts as "recent".
            if len(self._snapshots) == 1:
                return list(newest[1]), newest[2]
            return [0] * len(newest[1]), newest[2]
        delta = [late - early for late, early in zip(newest[1], anchor[1])]
        return delta, newest[2]

    def count(self, now: float | None = None) -> int:
        """Observations recorded inside the trailing window."""
        delta, _ = self._window_delta(now)
        return sum(delta)

    def percentile(self, q: float, now: float | None = None) -> float:
        """Windowed analogue of :meth:`LatencyHistogram.percentile`.

        Conservative like the cumulative version: reports the upper bound
        of the bucket holding the q-quantile windowed observation.  The
        overflow bucket reports the *cumulative* maximum (bucket deltas
        cannot recover the in-window max), which only overstates while an
        overflow observation is actually inside the window.  Returns 0.0
        for an empty window.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        delta, observed_max = self._window_delta(now)
        total = sum(delta)
        if total == 0 or self._bounds is None:
            return 0.0
        rank = max(1, int(round(q * total)))
        cumulative = 0
        for bucket, count in enumerate(delta):
            cumulative += count
            if cumulative >= rank:
                if bucket < len(self._bounds):
                    return self._bounds[bucket]
                return observed_max
        return observed_max
