"""Span tracer: deterministic request traces over an injected clock.

A :class:`SpanTracer` produces parent/child :class:`Span` trees.  Design
constraints, all driven by the engine's determinism guarantees:

* **No RNG.**  Trace and span IDs come from monotonic counters
  (``t000001``, ``s000001``), never from ``uuid``/``random``, so enabling
  tracing cannot perturb any seeded RNG stream the engine depends on.
* **Injected clock.**  Durations come from a caller-supplied monotonic
  clock (default ``time.perf_counter``); tests inject a fake clock and get
  bit-identical span trees.
* **Bounded memory.**  Finished spans land in a ring buffer
  (``collections.deque(maxlen=capacity)``); a service traced for a week
  keeps the most recent ``capacity`` spans, not all of them.
* **Thread-local span stacks.**  Parenthood follows the call stack of the
  *current thread*, so shard worker threads and the retrain executor each
  build their own subtrees without cross-talk.

The tracer here is always-on machinery; the zero-cost on/off switch lives
in :mod:`repro.obs.runtime`, which hands out a shared null span when
tracing is disabled.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracer", "critical_path", "format_span_tree",
           "stage_breakdown"]


@dataclass
class Span:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    duration_seconds: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)

    def set(self, key: str, value: object) -> "Span":
        """Attach one attribute; returns self so calls chain."""
        self.attributes[key] = value
        return self

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            payload["attributes"] = self.attributes
        return payload


class _SpanContext:
    """Context manager wrapping one live span on the current thread's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, key: str, value: object) -> "_SpanContext":
        self.span.attributes[key] = value
        return self

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attributes["error"] = exc_type.__name__
        self._tracer._finish(self.span)
        return None


class SpanTracer:
    """Collects spans into per-trace trees with a bounded ring buffer."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        #: The injected monotonic clock, public so instrumented hot loops
        #: can accumulate phase timings on the same (possibly fake) clock
        #: the spans use.
        self.clock = clock
        self._clock = clock
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._mutex = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._local = threading.local()

    # ----------------------------------------------------------------- stacks
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        """The innermost live span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> str | None:
        span = self.current_span()
        return span.trace_id if span else None

    # ------------------------------------------------------------------ spans
    def span(self, name: str, trace_id: str | None = None) -> _SpanContext:
        """Open a span; nested calls on the same thread become children.

        A root span (no live parent on this thread) starts a fresh trace
        unless ``trace_id`` pins it to an existing one — that is how a
        request ID minted at the serving front door reaches spans opened on
        executor threads.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            trace = trace_id or parent.trace_id
            parent_id = parent.span_id
        else:
            with self._mutex:
                trace = trace_id or f"t{next(self._trace_ids):06d}"
            parent_id = None
        with self._mutex:
            span_id = f"s{next(self._span_ids):06d}"
        span = Span(trace_id=trace, span_id=span_id, parent_id=parent_id,
                    name=name, start=self._clock())
        stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.duration_seconds = self._clock() - span.start
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._mutex:
            self._finished.append(span)

    def add_span(self, name: str, seconds: float,
                 attributes: dict[str, object] | None = None) -> Span:
        """Record a pre-measured span without the context-manager dance.

        Hot loops (the SGD batch loop) accumulate per-phase time in local
        floats and report one aggregate span at the end — one tracer call
        per fit instead of one per batch.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._mutex:
            span_id = f"s{next(self._span_ids):06d}"
            trace = parent.trace_id if parent else f"t{next(self._trace_ids):06d}"
        span = Span(trace_id=trace, span_id=span_id,
                    parent_id=parent.span_id if parent else None,
                    name=name, start=self._clock(),
                    duration_seconds=float(seconds),
                    attributes=dict(attributes) if attributes else {})
        with self._mutex:
            self._finished.append(span)
        return span

    # ------------------------------------------------------------------ export
    def spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by the ring capacity)."""
        with self._mutex:
            return list(self._finished)

    def drain(self) -> list[Span]:
        """Finished spans, removing them from the buffer."""
        with self._mutex:
            spans = list(self._finished)
            self._finished.clear()
        return spans

    def export_jsonl(self, path) -> int:
        """Write finished spans to ``path`` as JSON lines; returns the count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=False))
                handle.write("\n")
        return len(spans)

    def critical_path(self, trace_id: str) -> list[dict[str, object]]:
        """The longest root-to-leaf chain of one trace, with self-time.

        Answers "where did this request's wall time actually go": starting
        from the trace's slowest root, repeatedly descend into the slowest
        child.  Each step reports the span's total duration plus its
        *self time* — duration minus the time covered by its children — so
        a 200 ms parent whose children account for 190 ms shows 10 ms of
        its own work.  Spans evicted from the ring buffer mid-trace simply
        truncate the walk; an unknown ``trace_id`` returns ``[]``.
        """
        spans = [span for span in self.spans() if span.trace_id == trace_id]
        return critical_path(spans)


def critical_path(spans: Sequence[Span]) -> list[dict[str, object]]:
    """Longest child chain through ``spans`` with self-time attribution.

    Free-function form of :meth:`SpanTracer.critical_path` for callers who
    already hold a span list (an exported JSONL, a drained buffer).  All
    spans are assumed to belong to one trace; children whose parent was
    evicted from the ring buffer are treated as roots so the walk still
    starts somewhere sensible.
    """
    if not spans:
        return []
    ids = {span.span_id for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)

    path: list[dict[str, object]] = []
    candidates = children.get(None, [])
    while candidates:
        # Deterministic tie-break on span_id (counter IDs are unique and
        # ordered by creation), so equal-duration siblings don't flap.
        step = max(candidates,
                   key=lambda span: (span.duration_seconds, span.span_id))
        kids = children.get(step.span_id, [])
        child_time = sum(child.duration_seconds for child in kids)
        path.append({
            "span_id": step.span_id,
            "name": step.name,
            "duration_seconds": step.duration_seconds,
            "self_seconds": max(0.0, step.duration_seconds - child_time),
        })
        candidates = kids
    return path


def format_span_tree(spans: Sequence[Span]) -> str:
    """Render spans as indented per-trace trees (for demos and debugging)."""
    by_parent: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        # A parent evicted from the ring buffer orphans its children; show
        # them as roots rather than dropping them.
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    lines: list[str] = []

    def _render(span: Span, depth: int) -> None:
        millis = span.duration_seconds * 1e3
        attrs = ""
        if span.attributes:
            attrs = "  " + " ".join(f"{key}={value}" for key, value in
                                    span.attributes.items())
        lines.append(f"{'  ' * depth}{span.name}  {millis:.3f} ms"
                     f"  [{span.trace_id}/{span.span_id}]{attrs}")
        for child in by_parent.get(span.span_id, []):
            _render(child, depth + 1)

    for root in by_parent.get(None, []):
        _render(root, 0)
    return "\n".join(lines)


def stage_breakdown(spans: Iterable[Span],
                    prefix: str = "") -> dict[str, dict[str, float]]:
    """Aggregate span durations by name: total seconds and share of the sum.

    This is the profiling query behind "alias-table build is ~25% of cold
    serving": feed it the leaf spans of a traced run and read the share
    column.  ``prefix`` restricts aggregation to span names starting with
    it (e.g. ``"embed."`` for the training-stage split).
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        if prefix and not span.name.startswith(prefix):
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_seconds
        counts[span.name] = counts.get(span.name, 0) + 1
    grand_total = sum(totals.values())
    return {
        name: {
            "seconds": seconds,
            "count": counts[name],
            "share": seconds / grand_total if grand_total > 0 else 0.0,
        }
        for name, seconds in sorted(totals.items(),
                                    key=lambda item: -item[1])
    }
