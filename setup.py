"""Setup shim so that editable installs work on environments without the
`wheel` package (PEP 660 editable builds need bdist_wheel; the legacy
`setup.py develop` path used via `pip install -e . --no-use-pep517` does not).
"""
from setuptools import setup

setup()
