"""How many floor labels does each method really need?  (mini Fig. 11)

Run with:  python examples/label_budget_study.py

Sweeps the per-floor label budget on one synthetic office tower and compares
GRAFICS against a supervised DNN baseline (Scalable-DNN) and the MDS+Prox
baseline.  The point of the paper — GRAFICS is already near its ceiling with
four labels per floor while the supervised baseline keeps needing more — is
visible directly in the printed table.
"""

from __future__ import annotations

from repro.baselines import GraficsClassifier, MDSProxClassifier, ScalableDNNClassifier
from repro.data import hong_kong_like_buildings
from repro.evaluation import ExperimentProtocol, format_table, run_repeated

LABEL_BUDGETS = (1, 4, 16, 64)


def main() -> None:
    tower = next(d for d in hong_kong_like_buildings(records_per_floor=60, seed=1)
                 if d.building_id == "hk-office-b")
    print(f"Office tower: {len(tower)} records, {len(tower.floors)} floors, "
          f"{len(tower.macs)} MACs\n")

    factories = {
        "GRAFICS": lambda: GraficsClassifier(),
        "Scalable-DNN": lambda: ScalableDNNClassifier(pretrain_epochs=8,
                                                      train_epochs=30, seed=0),
        "MDS+Prox": lambda: MDSProxClassifier(seed=0),
    }

    rows = []
    for budget in LABEL_BUDGETS:
        protocol = ExperimentProtocol(labels_per_floor=budget, repetitions=2,
                                      seed=0)
        for method, factory in factories.items():
            result = run_repeated(method, factory, tower, protocol,
                                  extra={"labels/floor": budget})
            rows.append(result.as_row())
            print(f"  {method:<14s} labels/floor={budget:<3d} "
                  f"micro-F={result.micro_f:.3f}")

    print()
    print(format_table(rows, columns=["method", "labels/floor", "micro_f",
                                      "macro_f"]))


if __name__ == "__main__":
    main()
