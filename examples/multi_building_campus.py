"""City-scale scenario: one floor-identification service for many buildings.

Run with:  python examples/multi_building_campus.py

The Microsoft dataset that GRAFICS is evaluated on covers 204 buildings; a
deployed service must first figure out *which building* an online sample was
collected in, then which floor.  This example trains a
:class:`MultiBuildingFloorService` over a small synthetic campus and routes
online samples end to end (building attribution by MAC-vocabulary overlap,
floor prediction by the per-building GRAFICS model).
"""

from __future__ import annotations

from repro import GraficsConfig, MultiBuildingFloorService, UnknownEnvironmentError, SignalRecord
from repro.data import make_experiment_split, microsoft_like_campus
from repro.evaluation import format_table


def main() -> None:
    campus = microsoft_like_campus(num_buildings=4, records_per_floor=60, seed=0)
    service = MultiBuildingFloorService(GraficsConfig())

    held_out = {}
    for building in campus:
        split = make_experiment_split(building, train_ratio=0.7,
                                      labels_per_floor=4, seed=0)
        service.fit_building(building.subset(split.train_records), split.labels)
        held_out[building.building_id] = list(split.test_records)
        print(f"trained {building.building_id}: "
              f"{len(split.train_records)} records, "
              f"{len(building.floors)} floors, {split.num_labeled} labels")

    # Route held-out samples from every building through the single service.
    rows = []
    for building_id, records in held_out.items():
        probes = records[:40]
        predictions = service.predict_batch([r.without_floor() for r in probes])
        building_hits = sum(p.building_id == building_id for p in predictions)
        floor_hits = sum(p.building_id == building_id and p.floor == r.floor
                         for p, r in zip(predictions, probes))
        rows.append({
            "building": building_id,
            "samples": len(probes),
            "building attribution": f"{building_hits}/{len(probes)}",
            "building+floor correct": f"{floor_hits}/{len(probes)}",
        })
    print()
    print(format_table(rows))

    # A sample collected outdoors (no known MACs) is rejected, as in the paper.
    outdoor = SignalRecord(record_id="outdoor-probe",
                           rss={"food-truck-hotspot": -45.0})
    try:
        service.predict(outdoor)
    except UnknownEnvironmentError as error:
        print(f"\nOutdoor sample correctly rejected: {error}")


if __name__ == "__main__":
    main()
