"""Continuous learning: a campus whose access points churn mid-stream.

Run with:  python examples/continuous_campus.py

Crowdsourced records stream into a live serving stack one at a time.  The
:class:`ContinuousLearningPipeline` quality-filters them, keeps a bounded
sliding-window graph per building, and watches for drift.  Halfway through
this example, half of one building's APs are replaced (the AP-churn
scenario of the paper's Section III-A) — the MAC-vocabulary drift detector
fires, the scheduler retrains that building from its window (warm-started
from the previous embedding) and atomically hot-swaps the model, after
which records sensing the brand-new APs are served correctly again.
"""

from __future__ import annotations

import random

from repro import (
    ContinuousLearningPipeline,
    EmbeddingConfig,
    FloorServingService,
    GraficsConfig,
    SignalRecord,
    StreamConfig,
)
from repro.data import make_experiment_split, small_test_building
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig


def make_stream(split, count, prefix, rename=None, seed=0):
    """Unique stream records synthesized from a building's held-out samples."""
    rng = random.Random(seed)
    pool = list(split.test_records)
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {(rename or {}).get(mac, mac): value + rng.uniform(-2.5, 2.5)
               for mac, value in base.rss.items()}
        # Every third record carries a crowdsourced floor label; the
        # retrain scheduler harvests these from the window.
        yield SignalRecord(record_id=f"{prefix}{i:05d}", rss=rss,
                           floor=base.floor if i % 3 == 0 else None)


def main() -> None:
    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=10.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=3, records_per_floor=30,
                                  aps_per_floor=10, seed=7,
                                  building_id="science-wing")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)
    print(f"trained science-wing: {len(split.train_records)} records, "
          f"{len(service.registry.vocabulary_for('science-wing'))} APs")

    pipeline = ContinuousLearningPipeline(service, StreamConfig(
        window=WindowConfig(max_records=96),
        drift=DriftConfig(vocabulary_jaccard_min=0.6),
        scheduler=SchedulerConfig(min_window_records=48, warm_start=True)))

    # Phase 1: steady-state traffic.
    for record in make_stream(split, 120, "steady-"):
        pipeline.process(record)
    print(f"\nphase 1 (steady): {pipeline.processed_total} records processed, "
          f"window holds {pipeline.windows.total_records}, "
          f"drift events: {sum(pipeline.drift.events_total.values())}")

    # Phase 2: facilities replaces half the APs overnight.
    macs = sorted({m for r in split.test_records for m in r.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    print(f"\nphase 2 (churn): replacing {len(rename)} of {len(macs)} APs...")
    for record in make_stream(split, 300, "churn-", rename=rename, seed=1):
        result = pipeline.process(record)
        for event in result.drift_events:
            print(f"  drift detected: {event.detail}")
        if result.swapped:
            report = result.retrain
            print(f"  retrained + hot-swapped {report.building_id!r} from "
                  f"{report.window_records} window records "
                  f"({report.labeled_records} labeled) in "
                  f"{report.duration_seconds:.2f}s [{report.trigger}]")
            break

    # Post-swap: records sensing only the brand-new APs are served.
    probe = SignalRecord(record_id="new-ap-probe",
                         rss={f"{mac}:v2": -55.0 for mac in list(rename)[:5]})
    prediction = service.predict(probe)
    print(f"\npost-swap probe over new APs -> building "
          f"{prediction.building_id!r}, floor {prediction.floor} "
          f"(overlap {prediction.mac_overlap:.0%})")

    stats = pipeline.stats()
    print(f"\ningest:    {stats['ingest']}")
    print(f"windows:   {stats['windows']}")
    print(f"drift:     {stats['drift']['events_total']}")
    print(f"scheduler: {stats['scheduler']}")


if __name__ == "__main__":
    main()
