"""Scaling out: partitioned serving, background retrains, kill-and-resume.

Run with:  python examples/sharded_campus.py

A campus of several buildings is served by a :class:`ShardedServingService`
— buildings hash-partition across 4 shards, each with its own lock, cache
partition and router postings, while attribution stays globally identical
to the one-lock reference.  Crowdsourced traffic streams through a
:class:`ContinuousLearningPipeline` configured with a background
:class:`RetrainExecutor` (``retrain_workers=1``), so when one building's
APs churn, its retrain runs off the ingest thread and the hot swap lands a
few records later without stalling the other buildings' traffic.  Halfway
through, the node is "killed": the pipeline checkpoints to disk, and a
fresh process resumes from the checkpoint, replaying the rest of the
stream exactly as the uninterrupted node would have.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import (
    ContinuousLearningPipeline,
    EmbeddingConfig,
    GraficsConfig,
    ShardedServingService,
    SignalRecord,
    StreamConfig,
)
from repro.core.registry import MultiBuildingFloorService
from repro.data import make_experiment_split, small_test_building
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig

NUM_BUILDINGS = 3
NUM_SHARDS = 4


def train_campus():
    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=10.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    registry = MultiBuildingFloorService(config)
    splits = {}
    for b in range(NUM_BUILDINGS):
        building_id = f"building-{b}"
        dataset = small_test_building(num_floors=2, records_per_floor=25,
                                      aps_per_floor=10, seed=30 + b,
                                      building_id=building_id)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        registry.fit_building(dataset.subset(split.train_records),
                              split.labels)
        splits[building_id] = split
    return registry, splits


def make_stream(splits, count, prefix, rename_building=None, rename=None,
                seed=0):
    """Round-robin records across buildings, optionally churning one."""
    rng = random.Random(seed)
    pools = {b: list(split.test_records) for b, split in splits.items()}
    for i in range(count):
        for building_id, pool in pools.items():
            base = pool[i % len(pool)]
            mapping = rename if building_id == rename_building else None
            rss = {(mapping or {}).get(mac, mac): value
                   + rng.uniform(-2.5, 2.5)
                   for mac, value in base.rss.items()}
            yield SignalRecord(record_id=f"{prefix}{building_id}-{i:05d}",
                               rss=rss,
                               floor=base.floor if i % 3 == 0 else None)


def stream_config():
    return StreamConfig(
        window=WindowConfig(max_records=96),
        drift=DriftConfig(vocabulary_jaccard_min=0.6),
        scheduler=SchedulerConfig(min_window_records=48, warm_start=True),
        retrain_workers=1)           # fits run off the ingest thread


def main() -> None:
    registry, splits = train_campus()
    service = ShardedServingService(registry=registry, num_shards=NUM_SHARDS)
    placement = {b: service.shard_for(b).index for b in service.building_ids}
    print(f"trained {NUM_BUILDINGS} buildings, sharded across "
          f"{NUM_SHARDS} shards: {placement}")

    pipeline = ContinuousLearningPipeline(service, stream_config())

    # Phase 1: steady-state traffic across all buildings.
    for record in make_stream(splits, 60, "steady-"):
        pipeline.process(record)
    print(f"\nphase 1 (steady): {pipeline.processed_total} records, "
          f"windows hold {pipeline.windows.total_records}")

    # Phase 2: facilities replaces half of building-1's APs overnight.
    churned = "building-1"
    macs = sorted({m for r in splits[churned].test_records for m in r.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    print(f"\nphase 2 (churn): replacing {len(rename)} of {len(macs)} APs "
          f"in {churned!r} (shard {placement[churned]})...")
    swap_landed = False
    for record in make_stream(splits, 120, "churn-",
                              rename_building=churned, rename=rename,
                              seed=1):
        result = pipeline.process(record)
        for event in result.drift_events:
            print(f"  drift detected: {event.detail}")
        if result.retrain is not None and result.retrain.submitted:
            print(f"  retrain of {result.retrain.building_id!r} submitted to "
                  "the background executor; ingest keeps flowing")
        for report in result.completed_retrains:
            swap_landed = True
            print(f"  background swap landed: {report.building_id!r} from "
                  f"{report.window_records} window records in "
                  f"{report.duration_seconds:.2f}s [{report.trigger}]")
        if swap_landed:
            break

    # Phase 3: kill the node mid-stream and resume from the checkpoint.
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "node-checkpoint"
        pipeline.checkpoint(checkpoint_dir)
        pipeline.close()
        files = sorted(p.name for p in checkpoint_dir.rglob("*")
                       if p.is_file())
        print(f"\nphase 3 (restart): checkpointed {len(files)} files "
              f"({', '.join(files[:3])}, ...); resuming on a fresh stack")
        resumed = ContinuousLearningPipeline.resume(checkpoint_dir)

        for record in make_stream(splits, 30, "after-", seed=2):
            resumed.process(record)
        probe = SignalRecord(record_id="new-ap-probe",
                             rss={f"{mac}:v2": -55.0
                                  for mac in list(rename)[:5]})
        prediction = resumed.service.predict(probe)
        print(f"resumed node serves new APs: building "
              f"{prediction.building_id!r}, floor {prediction.floor} "
              f"(overlap {prediction.mac_overlap:.0%})")

        snapshot = resumed.service.telemetry_snapshot()
        print(f"\nper-shard stats: {snapshot['shards']}")
        print(f"scheduler:       {resumed.scheduler.stats()}")
        resumed.close()


if __name__ == "__main__":
    main()
