"""Shopping-mall deployment scenario: dynamic APs, device heterogeneity, persistence.

Run with:  python examples/mall_deployment.py

This mirrors the paper's motivating deployment (Section I): a large shopping
mall collects crowdsourced WiFi scans from shoppers' phones; only QR-code
check-ins at a handful of shops provide floor labels.  The example shows:

* training GRAFICS on a 4-storey mall with AP churn and heterogeneous devices;
* comparing it against the raw matrix representation (the missing-value
  problem the paper highlights);
* handling online samples that contain never-seen MAC addresses (newly
  installed APs);
* saving the trained model to disk and serving predictions from the reloaded
  copy.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GRAFICS, GraficsConfig, SignalRecord, load_model, save_model
from repro.baselines import MatrixProxClassifier
from repro.data import BuildingSpec, DevicePopulation, generate_building, make_experiment_split
from repro.data.propagation import PropagationParameters
from repro.evaluation import evaluate_predictions


def build_mall():
    """A 4-storey mall with 10% AP churn and 80 contributing devices."""
    spec = BuildingSpec(
        building_id="grand-mall",
        num_floors=4,
        width_m=110.0,
        depth_m=75.0,
        aps_per_floor=55,
        records_per_floor=150,
        ap_churn_fraction=0.1,
        propagation=PropagationParameters(floor_attenuation_db=18.0,
                                          horizontal_attenuation_db_per_m=0.35),
        devices=DevicePopulation(num_devices=80),
    )
    return generate_building(spec, seed=42)


def main() -> None:
    mall = build_mall()
    print(f"Mall dataset: {len(mall)} crowdsourced records, "
          f"{len(mall.macs)} MACs across {len(mall.floors)} floors")

    split = make_experiment_split(mall, train_ratio=0.7, labels_per_floor=4,
                                  seed=0)
    probes = [r.without_floor() for r in split.test_records]
    truth = split.test_ground_truth()

    # --- GRAFICS ------------------------------------------------------------
    model = GRAFICS(GraficsConfig()).fit(list(split.train_records), split.labels)
    grafics_predictions = {p.record_id: p.floor
                           for p in model.predict_batch(probes)}
    grafics_report = evaluate_predictions(truth, grafics_predictions)

    # --- Raw matrix + Prox (the missing-value-problem baseline) -------------
    matrix = MatrixProxClassifier()
    matrix.fit(list(split.train_records), split.labels)
    matrix_report = evaluate_predictions(truth, matrix.predict(probes))

    print(f"GRAFICS      micro-F {grafics_report.micro_f:.3f} "
          f"macro-F {grafics_report.macro_f:.3f}")
    print(f"Matrix+Prox  micro-F {matrix_report.micro_f:.3f} "
          f"macro-F {matrix_report.macro_f:.3f}")

    # --- A shopper's phone sees two brand-new APs (installed yesterday) -----
    template = split.test_records[0]
    fresh_sample = SignalRecord(
        record_id="shopper-0412",
        rss={**dict(template.rss),
             "new-ap:food-court:1": -58.0,
             "new-ap:food-court:2": -66.0})
    prediction = model.predict(fresh_sample)
    print(f"Shopper sample with brand-new APs -> floor "
          f"{mall.floor_names[prediction.floor]} "
          f"(true floor {mall.floor_names[template.floor]})")

    # --- Persist the trained model and serve from the reloaded copy ---------
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "grand-mall.npz"
        save_model(model, model_path)
        served = load_model(model_path)
        served_predictions = {p.record_id: p.floor
                              for p in served.predict_batch(probes[:50])}
        agreement = sum(served_predictions[rid] == grafics_predictions[rid]
                        for rid in served_predictions) / len(served_predictions)
        print(f"Reloaded model agrees with the original on "
              f"{agreement:.0%} of {len(served_predictions)} predictions "
              f"(saved to {model_path.name}, "
              f"{model_path.stat().st_size / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
