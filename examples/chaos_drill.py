"""Chaos drill: deterministic fault injection against the learning loop.

Run with:  python examples/chaos_drill.py

A scripted :class:`~repro.faults.FaultPlan` is armed against a live
continuous-learning pipeline and walks it through two failure domains:

* **Act 1 — failing retrains.**  Two injected fit failures push the
  building through exponential backoff into an open circuit breaker.
  Serving keeps answering from the stale model the whole time, and the
  health scorecard says exactly what is wrong (``retrain_circuit_open``).
  Once the backoff elapses, a half-open probe retrain succeeds, the
  breaker closes and the fresh model hot-swaps in.
* **Act 2 — torn checkpoint write.**  A checkpoint is torn mid-write
  (truncated temp file, silently renamed into place — the classic
  power-cut artifact).  ``resume()`` detects the corruption via the
  stored SHA-256 digest, falls back to the retained last-good generation
  and replays the lost segment to byte-identical results.
* **Act 3 — compute-pool worker killed mid-request.**  A serving stack
  with ``compute_workers=1`` has its worker hard-killed (``os._exit``)
  while computing a micro-batch: the batch surfaces as retryable
  rejections — never a hang — the pool respawns the worker and re-ships
  the model snapshot, and re-submitting the same records yields
  predictions byte-identical to an undisturbed control service.

Every fault is scheduled by hit count from a seeded plan, so the whole
drill is reproducible run to run — the same property the chaos tests in
``tests/faults/`` lean on.
"""

from __future__ import annotations

import multiprocessing
import pickle
import tempfile
from pathlib import Path

from repro import (
    ContinuousLearningPipeline,
    EmbeddingConfig,
    FloorServingService,
    GraficsConfig,
    ServingConfig,
    SignalRecord,
    StreamConfig,
    faults,
)
from repro.core.persistence import CheckpointCorruptError, load_stream_state
from repro.data import make_experiment_split, small_test_building
from repro.faults import FaultPlan
from repro.obs.health import HealthMonitor
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig


class ManualClock:
    """A hand-cranked clock so backoffs elapse exactly when the script says."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_stream(split, count, prefix, rename=None, seed=0):
    import random

    rng = random.Random(seed)
    pool = list(split.test_records)
    records = []
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {}
        for mac, value in base.rss.items():
            if rename is not None:
                mac = rename.get(mac, mac)
            rss[mac] = value + rng.uniform(-2.0, 2.0)
        records.append(SignalRecord(
            record_id=f"{prefix}{i:05d}", rss=rss,
            floor=base.floor if i % 3 == 0 else None))
    return records


def build_pipeline(clock):
    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=8.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=2, records_per_floor=25,
                                  aps_per_floor=10, seed=50,
                                  building_id="bldg-A")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)
    stream_config = StreamConfig(
        window=WindowConfig(max_records=96),
        drift=DriftConfig(vocabulary_jaccard_min=0.6),
        scheduler=SchedulerConfig(min_window_records=48, warm_start=True,
                                  backoff_initial_seconds=10.0,
                                  backoff_multiplier=2.0,
                                  backoff_jitter=0.0,
                                  breaker_failures=2))
    return ContinuousLearningPipeline(service, stream_config,
                                      clock=clock), split


def act_one(pipeline, split, clock):
    print("=== Act 1: failing retrains open the breaker, a probe closes it ===")
    scheduler = pipeline.scheduler
    monitor = HealthMonitor(pipeline=pipeline, clock=clock)
    probe = split.test_records[0].without_floor()

    pipeline.process_stream(make_stream(split, 80, "steady-"))
    macs = sorted({mac for r in split.test_records for mac in r.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    churn = make_stream(split, 200, "churn-", rename=rename, seed=1)

    plan = FaultPlan(seed=0).fail("retrain.fit", hits=[1, 2])
    with faults.active(plan):
        for record in churn:
            result = pipeline.process(record)
            if result.retrain is None:
                continue
            state = scheduler.breaker_state("bldg-A")
            if result.retrain.swapped:
                print(f"  retrain attempt: swapped "
                      f"(breaker {state})")
                break
            print(f"  retrain attempt: {result.retrain.skipped_reason} "
                  f"(breaker {state}, "
                  f"retry in {scheduler.retry_in('bldg-A'):.0f}s)")
            if state == "open":
                card = monitor.building_scorecard("bldg-A", clock())
                reasons = ", ".join(r.code for r in card.reasons)
                print(f"  /healthz while open: {card.status.value} "
                      f"[{reasons}]")
                answer = pipeline.service.predict(probe)
                print(f"  serving still answers from the stale model: "
                      f"floor {answer.floor}")
            clock.advance(scheduler.retry_in("bldg-A") + 1.0)

    card = monitor.building_scorecard("bldg-A", clock())
    print(f"  after recovery: breaker {scheduler.breaker_state('bldg-A')}, "
          f"/healthz {card.status.value}, "
          f"retrains_total {scheduler.retrains_total}")


def act_two(pipeline, split, checkpoint_dir):
    print("=== Act 2: torn checkpoint write falls back to last-good ===")
    pipeline.checkpoint(checkpoint_dir)
    print(f"  generation 1 checkpointed at {pipeline.processed_total} records")

    segment = make_stream(split, 20, "segment-", seed=5)
    results = pipeline.process_stream(segment)

    # Tear the stream-state temp file mid-write (hit 2; hit 1 is the
    # building's model file).  The writer renames the torn file into place
    # believing the write succeeded — exactly what a power cut produces.
    plan = FaultPlan(seed=0).torn_write("checkpoint.write", hits=[2])
    with faults.active(plan):
        pipeline.checkpoint(checkpoint_dir)
    print(f"  generation 2 checkpoint torn mid-write "
          f"({plan.fired[0].kind} at hit {plan.fired[0].hit})")
    try:
        load_stream_state(checkpoint_dir / "stream_state.json")
    except CheckpointCorruptError as error:
        print(f"  integrity check catches it: {type(error).__name__}")

    resumed = ContinuousLearningPipeline.resume(checkpoint_dir)
    print(f"  resume() fell back to last-good generation "
          f"({resumed.processed_total} records)")
    replayed = resumed.process_stream(segment)
    identical = all(
        (a.accepted, None if a.prediction is None else a.prediction.floor)
        == (b.accepted, None if b.prediction is None else b.prediction.floor)
        for a, b in zip(results, replayed))
    print(f"  replayed the lost segment: predictions identical = {identical}")


def act_three(split):
    print("=== Act 3: compute-pool worker killed mid-request ===")
    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=8.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    start_method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")
    serving = ServingConfig(max_batch_size=4, enable_cache=False,
                            compute_workers=1,
                            compute_start_method=start_method)
    control = FloorServingService(grafics_config=config)
    pooled = FloorServingService(grafics_config=config, config=serving)
    dataset = small_test_building(num_floors=2, records_per_floor=25,
                                  aps_per_floor=10, seed=50,
                                  building_id="bldg-A")
    for service in (control, pooled):
        service.fit_building(dataset.subset(split.train_records),
                             split.labels)
    probes = [r.without_floor() for r in split.test_records[:4]]

    plan = FaultPlan(seed=0).kill("serve.compute", hits=[1])
    with faults.active(plan):
        for probe in probes:
            pooled.submit(probe)
        results = pooled.drain()
    rejected = sum(1 for r in results if r.source == "rejected")
    restarts = pooled.telemetry.counter("compute_pool_worker_restarts_total")
    print(f"  worker hard-killed mid-batch: {rejected}/{len(results)} "
          f"requests rejected (retryable), worker restarts: {restarts}")

    for probe in probes:
        control.submit(probe)
        pooled.submit(probe)
    expected = {r.record_id: r.prediction for r in control.drain()}
    redo = {r.record_id: r.prediction for r in pooled.drain()}
    identical = (redo.keys() == expected.keys() and all(
        pickle.dumps(redo[k]) == pickle.dumps(expected[k])
        for k in expected))
    print(f"  resubmitted after respawn: predictions byte-identical to "
          f"undisturbed control = {identical}")
    pooled.close()


def main():
    clock = ManualClock()
    pipeline, split = build_pipeline(clock)
    act_one(pipeline, split, clock)
    with tempfile.TemporaryDirectory() as tmp:
        act_two(pipeline, split, Path(tmp) / "ckpt")
    act_three(split)
    print("chaos drill complete: injected faults, degraded truthfully, "
          "recovered cleanly")


if __name__ == "__main__":
    main()
