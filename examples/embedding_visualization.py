"""Visualise E-LINE's floor separation in the terminal (paper Fig. 6 / Fig. 8).

Run with:  python examples/embedding_visualization.py

Trains the E-LINE embedding on a three-storey campus building, projects the
record embeddings to 2-D with t-SNE, renders an ASCII scatter (digits are
floor numbers) and reports quantitative cluster-separation metrics for
E-LINE vs the dense-matrix representation.
"""

from __future__ import annotations

from repro import ELINEEmbedder, EmbeddingConfig, build_graph
from repro.baselines.base import MatrixFeaturizer
from repro.data import three_story_campus_building
from repro.evaluation import evaluate_separation, format_table
from repro.visualization import TSNE, TSNEConfig, scatter_to_text


def main() -> None:
    building = three_story_campus_building(records_per_floor=80, seed=7)
    records = list(building.records)
    record_ids = [r.record_id for r in records]
    floors = [r.floor for r in records]

    print(f"Embedding {len(records)} records from {building.building_id} "
          f"({len(building.macs)} MACs, {len(building.floors)} floors)...")
    graph = build_graph(records)
    embedding = ELINEEmbedder(EmbeddingConfig(samples_per_edge=40.0,
                                              seed=0)).fit(graph)
    vectors = embedding.record_matrix(record_ids)

    print("Projecting with t-SNE (this takes a few seconds)...")
    projection = TSNE(TSNEConfig(iterations=300, perplexity=25.0,
                                 seed=0)).fit_transform(vectors)
    print("\nE-LINE embedding, t-SNE projection "
          "(digits are ground-truth floors):\n")
    print(scatter_to_text(projection, floors, width=72, height=26))

    matrix_vectors = MatrixFeaturizer().fit_transform(records)
    rows = [
        evaluate_separation("E-LINE (GRAFICS)", vectors, floors).as_row(),
        evaluate_separation("raw RSS matrix", matrix_vectors, floors).as_row(),
    ]
    print("\nFloor-separation metrics (higher silhouette / nn_purity, lower "
          "intra/inter ratio = better):\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
