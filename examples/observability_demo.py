"""Observability: tracing a drift -> retrain -> hot-swap lifecycle.

Run with:  python examples/observability_demo.py

The same AP-churn scenario as ``continuous_campus.py``, but with the
observability layer switched on: a :class:`~repro.obs.SpanTracer` collects
parent/child spans across serving, online inference and the retrain
executor, structured JSON lifecycle events go to the ``repro.obs`` logger,
and every subsystem's counters land in one :class:`~repro.obs.
MetricsRegistry`.  At the end the demo prints

* the span tree of one traced online prediction,
* the per-stage cost breakdown of the embedding work (alias build vs
  sampling vs kernel — the profiling query behind the ROADMAP's
  "alias-table build is a fixed per-request cost" observation),
* the full registry in Prometheus text exposition format, and
* the live consumption layer: an :class:`~repro.obs.ObsServer` on an
  ephemeral port scraped over real HTTP — ``/metrics`` and ``/healthz``
  while the building is healthy, then again after an injected latency
  anomaly flips its scorecard to ``unhealthy`` with machine-readable
  reasons — plus the critical path of the traced request.

Everything here is stdlib + the already-installed scientific stack; the
observability layer adds no dependencies and is off by default (the
``obs.enable()`` call below is the only switch).
"""

from __future__ import annotations

import json
import logging
import random
import urllib.error
import urllib.request

from repro import (
    ContinuousLearningPipeline,
    EmbeddingConfig,
    FloorServingService,
    GraficsConfig,
    SignalRecord,
    StreamConfig,
)
from repro.data import make_experiment_split, small_test_building
from repro.obs import ObsServer
from repro.obs import runtime as obs
from repro.obs.tracer import format_span_tree, stage_breakdown
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig


def fetch(url):
    """GET returning (status, body) — a 503 health probe is data, not an error."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def make_stream(split, count, prefix, rename=None, seed=0):
    """Unique stream records synthesized from a building's held-out samples."""
    rng = random.Random(seed)
    pool = list(split.test_records)
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {(rename or {}).get(mac, mac): value + rng.uniform(-2.5, 2.5)
               for mac, value in base.rss.items()}
        yield SignalRecord(record_id=f"{prefix}{i:05d}", rss=rss,
                           floor=base.floor if i % 3 == 0 else None)


def main() -> None:
    # Lifecycle events (drift latched, hot swap installed, retrain fenced
    # stale...) are single-line JSON records on the 'repro.obs' logger; any
    # stdlib logging config picks them up.
    logging.basicConfig(format="%(name)s: %(message)s")
    logging.getLogger("repro.obs").setLevel(logging.INFO)

    # The one switch: installs a process-global tracer + metrics registry.
    # Without this call every instrumentation point is a no-op singleton.
    tracer, metrics = obs.enable()

    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=10.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=3, records_per_floor=30,
                                  aps_per_floor=10, seed=7,
                                  building_id="science-wing")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)

    pipeline = ContinuousLearningPipeline(service, StreamConfig(
        window=WindowConfig(max_records=96),
        drift=DriftConfig(vocabulary_jaccard_min=0.6),
        scheduler=SchedulerConfig(min_window_records=48, warm_start=True)))

    # Steady traffic, then an overnight AP swap that latches the
    # MAC-churn drift detector and triggers a traced retrain + hot swap.
    for record in make_stream(split, 120, "steady-"):
        pipeline.process(record)
    macs = sorted({m for r in split.test_records for m in r.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    print(f"\nreplacing {len(rename)} of {len(macs)} APs; watch the "
          "drift_latched / hot_swap_installed events above this line...\n")
    for record in make_stream(split, 300, "churn-", rename=rename, seed=1):
        if pipeline.process(record).swapped:
            break

    # One traced online prediction through the micro-batched intake (whose
    # results carry the request/trace ID): drain the span buffer first so
    # the tree below shows exactly this request.
    tracer.drain()
    probe = SignalRecord(record_id="traced-probe",
                         rss={f"{mac}:v2": -55.0 for mac in list(rename)[:5]})
    service.submit(probe)
    (result,) = service.drain()
    print(f"traced prediction: floor {result.prediction.floor} "
          f"(request id {result.trace_id})\n")

    print("span tree of that request:")
    print(format_span_tree(tracer.spans()))

    print("\nembedding stage breakdown (share of embedding time):")
    for name, info in stage_breakdown(tracer.spans(),
                                      prefix="embed.").items():
        print(f"  {name:<20} {info['share']:6.1%}  "
              f"({info['seconds'] * 1e3:.2f} ms over {info['count']} spans)")

    print("\nmetrics registry (Prometheus text exposition), service view "
          "merged with the stream/training counters:")
    print(service.telemetry.merged_snapshot([metrics])["counters"])
    print()
    print(metrics.to_prometheus_text())

    # Where did that request's wall time actually go?  The critical path
    # walks the slowest child chain and attributes self-time per span.
    trace_id = tracer.spans()[-1].trace_id
    print("critical path of the traced request:")
    for step in tracer.critical_path(trace_id):
        print(f"  {step['name']:<24} {step['duration_seconds'] * 1e3:8.3f} ms "
              f"(self {step['self_seconds'] * 1e3:.3f} ms)")

    # A little warm-cache traffic (repeat probes hit the fingerprint
    # cache), so the baseline scorecard is healthy rather than flagging
    # the all-unique stream above as a 0% cache hit rate.
    for _ in range(8):
        service.predict(probe)

    # ---- the live consumption layer: health & SLOs over real HTTP ------
    with ObsServer(pipeline=pipeline) as server:
        print(f"\nObsServer listening on {server.url} "
              "(/metrics /healthz /slo /spans)")
        _, body = fetch(server.url + "/metrics")
        families = [line for line in body.splitlines()
                    if line.startswith("# TYPE")]
        print(f"/metrics: {len(families)} metric families, "
              f"{len(body.splitlines())} samples")
        status, body = fetch(server.url + "/healthz")
        report = json.loads(body)
        print(f"/healthz: HTTP {status}, fleet is "
              f"{report['status']!r}, building science-wing is "
              f"{report['buildings']['science-wing']['status']!r}")

        # Inject a latency anomaly: the p95 over the trailing window blows
        # past the outage threshold and the scorecard flips — with the
        # machine-readable reason an operator (or rebalancer) acts on.
        print("\ninjecting a 2 s tail-latency anomaly...")
        for _ in range(12):
            service.telemetry.observe("request_seconds", 2.0)
        status, body = fetch(server.url + "/healthz")
        report = json.loads(body)
        card = report["buildings"]["science-wing"]
        print(f"/healthz: HTTP {status}, building science-wing is now "
              f"{card['status']!r}:")
        for reason in card["reasons"]:
            print(f"  [{reason['severity']}] {reason['code']}: "
                  f"{reason['detail']}")
        _, body = fetch(server.url + "/slo")
        slo = json.loads(body)
        print(f"/slo: ok={slo['ok']}, objectives: "
              + ", ".join(f"{o['name']}={'ok' if o['ok'] else 'VIOLATED'}"
                          for o in slo["objectives"]))

    obs.disable()


if __name__ == "__main__":
    main()
