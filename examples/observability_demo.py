"""Observability: tracing a drift -> retrain -> hot-swap lifecycle.

Run with:  python examples/observability_demo.py

The same AP-churn scenario as ``continuous_campus.py``, but with the
observability layer switched on: a :class:`~repro.obs.SpanTracer` collects
parent/child spans across serving, online inference and the retrain
executor, structured JSON lifecycle events go to the ``repro.obs`` logger,
and every subsystem's counters land in one :class:`~repro.obs.
MetricsRegistry`.  At the end the demo prints

* the span tree of one traced online prediction,
* the per-stage cost breakdown of the embedding work (alias build vs
  sampling vs kernel — the profiling query behind the ROADMAP's
  "alias-table build is a fixed per-request cost" observation), and
* the full registry in Prometheus text exposition format.

Everything here is stdlib + the already-installed scientific stack; the
observability layer adds no dependencies and is off by default (the
``obs.enable()`` call below is the only switch).
"""

from __future__ import annotations

import logging
import random

from repro import (
    ContinuousLearningPipeline,
    EmbeddingConfig,
    FloorServingService,
    GraficsConfig,
    SignalRecord,
    StreamConfig,
)
from repro.data import make_experiment_split, small_test_building
from repro.obs import runtime as obs
from repro.obs.tracer import format_span_tree, stage_breakdown
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig


def make_stream(split, count, prefix, rename=None, seed=0):
    """Unique stream records synthesized from a building's held-out samples."""
    rng = random.Random(seed)
    pool = list(split.test_records)
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {(rename or {}).get(mac, mac): value + rng.uniform(-2.5, 2.5)
               for mac, value in base.rss.items()}
        yield SignalRecord(record_id=f"{prefix}{i:05d}", rss=rss,
                           floor=base.floor if i % 3 == 0 else None)


def main() -> None:
    # Lifecycle events (drift latched, hot swap installed, retrain fenced
    # stale...) are single-line JSON records on the 'repro.obs' logger; any
    # stdlib logging config picks them up.
    logging.basicConfig(format="%(name)s: %(message)s")
    logging.getLogger("repro.obs").setLevel(logging.INFO)

    # The one switch: installs a process-global tracer + metrics registry.
    # Without this call every instrumentation point is a no-op singleton.
    tracer, metrics = obs.enable()

    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=10.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=3, records_per_floor=30,
                                  aps_per_floor=10, seed=7,
                                  building_id="science-wing")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)

    pipeline = ContinuousLearningPipeline(service, StreamConfig(
        window=WindowConfig(max_records=96),
        drift=DriftConfig(vocabulary_jaccard_min=0.6),
        scheduler=SchedulerConfig(min_window_records=48, warm_start=True)))

    # Steady traffic, then an overnight AP swap that latches the
    # MAC-churn drift detector and triggers a traced retrain + hot swap.
    for record in make_stream(split, 120, "steady-"):
        pipeline.process(record)
    macs = sorted({m for r in split.test_records for m in r.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    print(f"\nreplacing {len(rename)} of {len(macs)} APs; watch the "
          "drift_latched / hot_swap_installed events above this line...\n")
    for record in make_stream(split, 300, "churn-", rename=rename, seed=1):
        if pipeline.process(record).swapped:
            break

    # One traced online prediction through the micro-batched intake (whose
    # results carry the request/trace ID): drain the span buffer first so
    # the tree below shows exactly this request.
    tracer.drain()
    probe = SignalRecord(record_id="traced-probe",
                         rss={f"{mac}:v2": -55.0 for mac in list(rename)[:5]})
    service.submit(probe)
    (result,) = service.drain()
    print(f"traced prediction: floor {result.prediction.floor} "
          f"(request id {result.trace_id})\n")

    print("span tree of that request:")
    print(format_span_tree(tracer.spans()))

    print("\nembedding stage breakdown (share of embedding time):")
    for name, info in stage_breakdown(tracer.spans(),
                                      prefix="embed.").items():
        print(f"  {name:<20} {info['share']:6.1%}  "
              f"({info['seconds'] * 1e3:.2f} ms over {info['count']} spans)")

    print("\nmetrics registry (Prometheus text exposition), service view "
          "merged with the stream/training counters:")
    print(service.telemetry.merged_snapshot([metrics])["counters"])
    print()
    print(metrics.to_prometheus_text())

    obs.disable()


if __name__ == "__main__":
    main()
