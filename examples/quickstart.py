"""Quickstart: train GRAFICS on crowdsourced WiFi records and identify floors.

Run with:  python examples/quickstart.py

The example generates a small synthetic three-storey building (a stand-in for
a crowdsourced collection campaign), reveals only four floor-labeled samples
per floor, trains the full GRAFICS pipeline (bipartite graph -> E-LINE
embedding -> proximity clustering) and then identifies the floor of held-out
online samples.
"""

from __future__ import annotations

from repro import GRAFICS, GraficsConfig
from repro.data import make_experiment_split, small_test_building
from repro.evaluation import evaluate_predictions


def main() -> None:
    # 1. Crowdsourced data: ~50 records per floor, ground truth attached only
    #    for evaluation purposes.
    building = small_test_building(num_floors=3, records_per_floor=50,
                                   aps_per_floor=25, seed=11)
    print(f"Building {building.building_id!r}: {len(building)} records, "
          f"{len(building.macs)} MAC addresses, floors {building.floors}")

    # 2. The paper's protocol: 70% of records for training, of which only four
    #    per floor reveal their floor label.
    split = make_experiment_split(building, train_ratio=0.7,
                                  labels_per_floor=4, seed=0)
    print(f"Training records: {len(split.train_records)} "
          f"({split.num_labeled} labeled); test records: {len(split.test_records)}")

    # 3. Offline training.
    model = GRAFICS(GraficsConfig(embedding_dimension=8))
    model.fit(list(split.train_records), split.labels)
    print("Trained model:", model.training_summary())

    # 4. Online inference on held-out samples (floor labels stripped).
    probes = [record.without_floor() for record in split.test_records]
    predictions = model.predict_batch(probes)
    predicted = {p.record_id: p.floor for p in predictions}

    # 5. Score against the ground truth.
    report = evaluate_predictions(split.test_ground_truth(), predicted)
    print(f"micro-F = {report.micro_f:.3f}   macro-F = {report.macro_f:.3f}")

    one = predictions[0]
    print(f"Example: record {one.record_id!r} -> floor "
          f"{building.floor_names.get(one.floor, one.floor)} "
          f"(distance to winning cluster centroid: {one.distance:.2f})")


if __name__ == "__main__":
    main()
