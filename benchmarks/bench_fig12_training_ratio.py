"""Fig. 12 — F-scores vs the ratio of data used for training.

Paper: with the label budget fixed at four per floor, every model improves as
the training portion of the dataset grows from 10% to 90% (more unlabeled
records to learn the structure from), with GRAFICS on top throughout.

Reproduction: sweep the training ratio over {0.3, 0.5, 0.7, 0.9} for GRAFICS
and two representative baselines on one building per corpus.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import paper_method_factories

RATIOS = (0.3, 0.5, 0.7, 0.9)
METHODS = ("GRAFICS", "Scalable-DNN", "MDS+Prox")


def sweep(dataset):
    factories = {name: factory for name, factory
                 in paper_method_factories().items() if name in METHODS}
    rows = []
    scores = {}
    for ratio in RATIOS:
        protocol = ExperimentProtocol(train_ratio=ratio, labels_per_floor=4,
                                      repetitions=1, seed=0)
        for method, factory in factories.items():
            result = run_repeated(method, factory, dataset, protocol,
                                  extra={"train_ratio": ratio})
            scores[(method, ratio)] = result
            rows.append(result.as_row())
    return rows, scores


def test_fig12_training_ratio(benchmark, hong_kong_corpus):
    dataset = next(d for d in hong_kong_corpus if d.building_id == "hk-mall-b")
    rows, scores = benchmark.pedantic(lambda: sweep(dataset), rounds=1,
                                      iterations=1)
    save_table("fig12_training_ratio", rows,
               columns=["method", "train_ratio", "micro_f", "macro_f"],
               header="Fig. 12 — F-scores vs training-data ratio "
                      "(4 labels per floor, hk-mall-b)")

    # GRAFICS improves (or stays at ceiling) with more training data and is
    # the best method at the paper's default 70% split.
    assert scores[("GRAFICS", 0.9)].micro_f >= scores[("GRAFICS", 0.3)].micro_f - 0.05
    assert scores[("GRAFICS", 0.7)].micro_f >= max(
        scores[(m, 0.7)].micro_f for m in METHODS if m != "GRAFICS") - 0.05
    assert scores[("GRAFICS", 0.7)].micro_f > 0.8
