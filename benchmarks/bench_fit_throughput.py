"""Training-kernel benchmark: GRAFICS fit throughput, reference vs fused.

The continuous-learning loop (PR 2/3) retrains constantly, so E-LINE fit
time gates hot-swap latency, retrain-worker occupancy and how many buildings
one host can keep fresh.  This benchmark measures the pluggable
training-kernel layer (``EmbeddingConfig.kernel``) on that axis:

1. **Fit throughput** — end-to-end ``GRAFICS.fit`` wall-clock and edge
   samples/s at preset sizes with the default embedding config, for the
   ``reference`` kernel (the byte-identity baseline) and the ``fused``
   kernel.  The fused kernel must be at least ``MIN_FIT_SPEEDUP`` faster
   (the recorded number on the 1-CPU reference container is 2x+), and both
   kernels must reach identical floor accuracy on the campus preset.

2. **Retrain under stream** — the PR 3 continuous-learning harness: a
   round-robin record stream with cadence-triggered synchronous retrains,
   once with the default kernel and once with ``retrain_kernel="fused"``.
   Reported as stream records/s plus mean retrain seconds — the fused
   kernel shrinks exactly the stall the async executor otherwise has to
   hide.

Run standalone (``--smoke`` for the CI-sized variant) or via pytest; both
print one machine-readable JSON summary line prefixed ``BENCH_JSON`` so CI
logs can be scraped for regressions.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import time

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, SignalRecord, StreamConfig
from repro.core.registry import MultiBuildingFloorService
from repro.data import (
    make_experiment_split,
    small_test_building,
    three_story_campus_building,
)
from repro.serving import FloorServingService
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)

from conftest import save_table

#: ``accuracy_flips`` bounds how many test-record predictions may differ
#: between the kernels: 0 at full size (the presets are well-separated there,
#: accuracies must be identical), one flip at smoke size, where the tiny
#: graph leaves borderline records whose cluster hops on tolerance-level
#: embedding differences.
FULL = {"records_per_floor": 100, "labels_per_floor": 6, "repeats": 3,
        "accuracy_flips": 0,
        "stream_records": 360, "retrain_every": 24, "window": 192,
        "stream_records_per_floor": 25}
SMOKE = {"records_per_floor": 40, "labels_per_floor": 4, "repeats": 2,
         "accuracy_flips": 1,
         "stream_records": 120, "retrain_every": 16, "window": 96,
         "stream_records_per_floor": 15}

#: Conservative CI floor; the measured number on the idle 1-CPU reference
#: container is recorded in benchmarks/results/ and CHANGES.md (2x+).
MIN_FIT_SPEEDUP = 1.3


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


# ------------------------------------------------------------ fit throughput
def measure_fit(sizes) -> dict:
    """reference-vs-fused ``GRAFICS.fit`` on the paper's campus preset."""
    dataset = three_story_campus_building(
        records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(
        dataset, labels_per_floor=sizes["labels_per_floor"], seed=0)
    records = list(split.train_records)
    config = GraficsConfig(embedding=EmbeddingConfig(seed=0),
                           allow_unreachable_clusters=True)
    probes = [r.without_floor() for r in split.test_records]
    truth = [r.floor for r in split.test_records]

    results = {}
    for kernel in ("reference", "fused"):
        seconds, model = _best_of(
            lambda k=kernel: GRAFICS(config).fit(records, split.labels,
                                                 kernel=k),
            sizes["repeats"])
        total_samples = int(model.embedding.config.samples_per_edge
                            * model.graph.num_edges)
        predictions = model.predict_batch(probes)
        hits = sum(1 for p, t in zip(predictions, truth) if p.floor == t)
        results[kernel] = {
            "seconds": round(seconds, 4),
            "samples_per_s": round(total_samples / seconds, 1),
            "accuracy": round(hits / len(truth), 4),
            "hits": hits,
        }
    speedup = (results["reference"]["seconds"] / results["fused"]["seconds"])

    rows = [{"kernel": kernel, **metrics}
            for kernel, metrics in results.items()]
    rows.append({"kernel": "speedup", "seconds": round(speedup, 2),
                 "samples_per_s": "", "accuracy": ""})
    save_table("fit_throughput", rows,
               columns=["kernel", "seconds", "samples_per_s", "accuracy"],
               header=f"GRAFICS fit, campus preset "
                      f"({sizes['records_per_floor']} records/floor, "
                      "default embedding config)")

    flips = abs(results["fused"].pop("hits")
                - results["reference"].pop("hits"))
    assert flips <= sizes["accuracy_flips"], (
        "fused kernel changed floor accuracy: "
        f"{results['fused']['accuracy']} vs {results['reference']['accuracy']}")
    assert speedup >= MIN_FIT_SPEEDUP, (
        f"fused kernel is only {speedup:.2f}x faster than reference")
    return {"reference": results["reference"], "fused": results["fused"],
            "speedup": round(speedup, 2)}


# ------------------------------------------------------- retrain under stream
def _jittered_stream(split, building_id, label_every=3, jitter=2.5):
    rng = random.Random(7)
    pool = list(split.test_records)
    for i in itertools.count():
        base = pool[i % len(pool)]
        rss = {mac: value + rng.uniform(-jitter, jitter)
               for mac, value in base.rss.items()}
        yield SignalRecord(record_id=f"stream-{building_id}-{i:06d}", rss=rss,
                           floor=base.floor if i % label_every == 0 else None)


def measure_retrain_stream(sizes, retrain_kernel: str | None) -> dict:
    """Stream records/s with synchronous cadence retrains (PR 3 harness)."""
    building_id = "bench-stream"
    dataset = small_test_building(
        num_floors=2, records_per_floor=sizes["stream_records_per_floor"],
        aps_per_floor=10, seed=70, building_id=building_id)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    registry = MultiBuildingFloorService(GraficsConfig(
        embedding=EmbeddingConfig(seed=0), allow_unreachable_clusters=True))
    registry.fit_building(dataset.subset(split.train_records), split.labels)
    service = FloorServingService(registry=registry)
    pipeline = ContinuousLearningPipeline(service, StreamConfig(
        window=WindowConfig(max_records=sizes["window"]),
        drift=DriftConfig(vocabulary_jaccard_min=0.2),  # cadence drives this
        scheduler=SchedulerConfig(
            retrain_every_records=sizes["retrain_every"],
            min_window_records=sizes["retrain_every"],
            min_labeled_records=2, warm_start=True),
        retrain_kernel=retrain_kernel))

    stream = _jittered_stream(split, building_id)
    retrain_seconds = []
    start = time.perf_counter()
    for _ in range(sizes["stream_records"]):
        result = pipeline.process(next(stream))
        if result.retrain is not None and result.retrain.swapped:
            retrain_seconds.append(result.retrain.duration_seconds)
    seconds = time.perf_counter() - start
    pipeline.close()
    mean_retrain = (sum(retrain_seconds) / len(retrain_seconds)
                    if retrain_seconds else 0.0)
    return {"kernel": retrain_kernel or "reference (default)",
            "records": sizes["stream_records"],
            "records_per_s": round(sizes["stream_records"] / seconds, 1),
            "retrains": len(retrain_seconds),
            "mean_retrain_s": round(mean_retrain, 4)}


# ------------------------------------------------------------------- driver
def run(sizes, label) -> dict:
    fit = measure_fit(sizes)
    stream_reference = measure_retrain_stream(sizes, None)
    stream_fused = measure_retrain_stream(sizes, "fused")
    save_table("fit_retrain_stream",
               [stream_reference, stream_fused],
               columns=["kernel", "records", "records_per_s", "retrains",
                        "mean_retrain_s"],
               header="Stream with synchronous cadence retrains "
                      f"({label} sizes)")
    assert stream_fused["retrains"] == stream_reference["retrains"]

    summary = {"benchmark": "fit_throughput", "mode": label,
               "fit": fit,
               "retrain_stream": {"reference": stream_reference,
                                  "fused": stream_fused}}
    print("BENCH_JSON " + json.dumps(summary))
    return summary


def test_fit_throughput():
    """Pytest entry point (full sizes)."""
    run(FULL, "full")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, not minutes)")
    args = parser.parse_args(argv)
    run(SMOKE if args.smoke else FULL, "smoke" if args.smoke else "full")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
