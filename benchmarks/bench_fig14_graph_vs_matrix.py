"""Fig. 14 — bipartite graph modelling + E-LINE vs the raw matrix representation.

Paper: feeding the dense (-120-imputed) RSS matrix rows straight into the
proximity clustering performs far worse than GRAFICS, demonstrating the
severity of the missing-value problem.

Reproduction: GRAFICS vs Matrix+Prox on one building from each corpus with
four labels per floor; GRAFICS must win clearly on both micro- and macro-F.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory, matrix_factory


def compare(dataset, corpus_name):
    protocol = ExperimentProtocol(labels_per_floor=4, repetitions=3, seed=0)
    graph_result = run_repeated("Graph (GRAFICS)", grafics_factory(), dataset,
                                protocol, extra={"corpus": corpus_name})
    matrix_result = run_repeated("Matrix", matrix_factory, dataset, protocol,
                                 extra={"corpus": corpus_name})
    return graph_result, matrix_result


def test_fig14_graph_vs_matrix(benchmark, microsoft_corpus, hong_kong_corpus):
    ms_building = microsoft_corpus[1]
    hk_building = next(d for d in hong_kong_corpus
                       if d.building_id == "hk-mall-a")

    def run():
        return compare(ms_building, "microsoft"), compare(hk_building, "hong-kong")

    (ms_graph, ms_matrix), (hk_graph, hk_matrix) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = [r.as_row() for r in (ms_graph, ms_matrix, hk_graph, hk_matrix)]
    save_table("fig14_graph_vs_matrix", rows,
               columns=["method", "corpus", "micro_p", "micro_r", "micro_f",
                        "macro_p", "macro_r", "macro_f"],
               header="Fig. 14 — graph modelling + E-LINE vs raw matrix "
                      "representation (4 labels per floor)")

    assert ms_graph.micro_f > ms_matrix.micro_f + 0.03
    assert hk_graph.micro_f > hk_matrix.micro_f + 0.03
    assert ms_graph.macro_f > ms_matrix.macro_f
    assert hk_graph.macro_f > hk_matrix.macro_f
