"""Fig. 1 — statistics of crowdsourced RF signal records on one mall floor.

Paper: (a) CDF of the number of MACs per record — most records contain fewer
than 40 of the floor's ~805 MACs; (b) CDF of the pairwise MAC-overlap ratio —
78% of record pairs overlap by less than 0.5.

Reproduction: the synthetic dense mall floor must show the same two shapes
(records observe a small fraction of the floor's vocabulary; most pairs
overlap below 0.5).  The benchmark times the statistics computation itself.
"""

from __future__ import annotations

from repro.data import overlap_ratio_cdf, record_size_cdf

from conftest import save_table


def test_fig01_record_statistics(benchmark, mall_floor):
    def compute():
        sizes = record_size_cdf(mall_floor)
        overlaps = overlap_ratio_cdf(mall_floor, max_pairs=50_000, seed=0)
        return sizes, overlaps

    sizes, overlaps = benchmark.pedantic(compute, rounds=3, iterations=1)

    vocabulary = len(mall_floor.macs)
    rows = [
        {"statistic": "records on floor", "value": len(mall_floor)},
        {"statistic": "distinct MACs on floor", "value": vocabulary},
        {"statistic": "mean MACs per record", "value": round(sizes.mean, 1)},
        {"statistic": "median MACs per record", "value": round(sizes.median, 1)},
        {"statistic": "P90 MACs per record", "value": round(sizes.quantile(0.9), 1)},
        {"statistic": "mean record coverage of vocabulary",
         "value": round(sizes.mean / vocabulary, 3)},
        {"statistic": "median pairwise overlap ratio",
         "value": round(overlaps.median, 3)},
        {"statistic": "fraction of pairs with overlap < 0.5",
         "value": round(overlaps.evaluate(0.5), 3)},
    ]
    save_table("fig01_record_statistics", rows,
               columns=["statistic", "value"],
               header="Fig. 1 — record sparsity and pairwise overlap "
                      "(paper: <40 MACs/record out of ~805; 78% of pairs "
                      "overlap < 0.5)")

    # Shape assertions: sparse records, low pairwise overlap.
    assert sizes.mean < 0.35 * vocabulary
    assert overlaps.evaluate(0.5) > 0.6
