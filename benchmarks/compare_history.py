"""Regression table over the committed benchmark history files.

Each ``benchmarks/results/*_history.jsonl`` line is one recorded benchmark
run (typically one per PR that touched the measured subsystem).  This tool
flattens the numeric metrics of the oldest and newest line of every history
file and prints a side-by-side table with the relative change, so a PR that
regresses a tracked number shows up in review (and, with
``--fail-on-regress``, in CI) instead of drowning in the JSON.

Direction is inferred from the metric name: throughput-style suffixes
(``_per_s``, ``_rps``, ``speedup``, ``ratio``, ``accuracy``) count higher as
better; latency-style suffixes (``_seconds``, ``_s``, ``_us_per_probe``,
``seconds_per_sample``) count lower as better.  Unrecognised metrics are
reported but never fail the run.

The reference container is noisy (interleaved A/B runs of identical code
swing by double-digit percentages), so the default tolerance is deliberately
wide; tighten it only on quieter hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_HIGHER_IS_BETTER = ("_per_s", "_rps", "speedup", "ratio", "accuracy",
                     "samples_per_s", "records_per_s", "hit_rate")
_LOWER_IS_BETTER = ("_seconds", "_s", "_us_per_probe", "seconds_per_sample",
                    "latency")


def _direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 when unknown."""
    leaf = name.rsplit(".", 1)[-1]
    for suffix in _HIGHER_IS_BETTER:
        if leaf.endswith(suffix):
            return 1
    for suffix in _LOWER_IS_BETTER:
        if leaf.endswith(suffix):
            return -1
    return 0


def _flatten(payload: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every numeric leaf of a history line."""
    flat: dict[str, float] = {}
    for key, value in payload.items():
        if key in ("recorded", "pr", "label", "container", "preset",
                   "bench_json"):
            continue
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{path}."))
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, dict):
                    flat.update(_flatten(item, prefix=f"{path}[{index}]."))
    return flat


def _load_history(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()
            if line.strip()]


def compare_file(path: Path, tolerance: float) -> tuple[list[dict], int]:
    """Rows of the comparison table for one history file + regression count.

    Compares the oldest recorded line against the newest; a single-line
    history has nothing to regress against and produces status ``baseline``
    rows.
    """
    entries = _load_history(path)
    if not entries:
        return [], 0
    baseline, latest = entries[0], entries[-1]
    base_flat = _flatten(baseline)
    late_flat = _flatten(latest)
    rows = []
    regressions = 0
    for name in sorted(set(base_flat) | set(late_flat)):
        base = base_flat.get(name)
        late = late_flat.get(name)
        if len(entries) == 1:
            rows.append({"metric": name, "baseline": base, "latest": late,
                         "change": "", "status": "baseline"})
            continue
        if base is None or late is None:
            rows.append({"metric": name, "baseline": base, "latest": late,
                         "change": "", "status": "added" if base is None
                         else "removed"})
            continue
        if base == 0:
            change = float("inf") if late != 0 else 0.0
        else:
            change = (late - base) / abs(base)
        direction = _direction(name)
        if direction == 0:
            status = "info"
        elif direction * change < -tolerance:
            status = "REGRESSED"
            regressions += 1
        elif direction * change > tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append({"metric": name, "baseline": base, "latest": late,
                     "change": f"{change:+.1%}", "status": status})
    return rows, regressions


def _print_table(title: str, rows: list[dict]) -> None:
    print(f"\n== {title} ==")
    if not rows:
        print("  (empty history)")
        return
    widths = {col: max(len(col), *(len(str(row[col])) for row in rows))
              for col in ("metric", "baseline", "latest", "change", "status")}
    header = "  ".join(col.ljust(widths[col])
                       for col in ("metric", "baseline", "latest", "change",
                                   "status"))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row[col]).ljust(widths[col])
                        for col in ("metric", "baseline", "latest", "change",
                                    "status")))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", type=Path,
                        help="history files to compare (default: every "
                             "*_history.jsonl under benchmarks/results/)")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="relative change treated as noise (default "
                             "0.35: the reference container is shared and "
                             "single runs swing widely)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any direction-aware metric moved "
                             "against its direction by more than the "
                             "tolerance")
    args = parser.parse_args(argv)

    files = args.files or sorted(RESULTS_DIR.glob("*_history.jsonl"))
    if not files:
        print("no history files found", file=sys.stderr)
        return 2

    total_regressions = 0
    for path in files:
        rows, regressions = compare_file(path, args.tolerance)
        entries = _load_history(path)
        span = (f"{entries[0].get('recorded', '?')} (PR "
                f"{entries[0].get('pr', '?')}) -> "
                f"{entries[-1].get('recorded', '?')} (PR "
                f"{entries[-1].get('pr', '?')})") if entries else "empty"
        _print_table(f"{path.name}: {span}", rows)
        total_regressions += regressions

    if total_regressions:
        print(f"\n{total_regressions} metric(s) regressed beyond "
              f"{args.tolerance:.0%}")
        if args.fail_on_regress:
            return 1
    else:
        print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
