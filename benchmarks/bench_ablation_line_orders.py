"""Section VI-C (text) — LINE proximity orders on the bipartite graph.

Paper: "for LINE, we consider its second-order proximity only since it turns
out to be better than LINE with first-order and second-order proximities" —
first-order proximity is not meaningful on a bipartite graph because edges
only connect nodes of different types.

Reproduction: compare GRAFICS-with-LINE using first-order only, second-order
only and both, with a generous 40-labels-per-floor budget so that the
embedding quality (not the label budget) is the limiting factor.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_line_factory

ORDERS = ("line-first", "line", "line-combined")
LABELS = {"line-first": "LINE (1st order)", "line": "LINE (2nd order)",
          "line-combined": "LINE (1st + 2nd)"}


def test_ablation_line_orders(benchmark, campus_building):
    protocol = ExperimentProtocol(labels_per_floor=40, repetitions=1, seed=0)

    def run():
        results = {}
        for order in ORDERS:
            results[order] = run_repeated(LABELS[order],
                                          grafics_line_factory(order=order),
                                          campus_building, protocol,
                                          extra={"order": order})
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_line_orders",
               [results[o].as_row() for o in ORDERS],
               columns=["method", "micro_f", "macro_f", "micro_f_std"],
               header="Section VI-C — LINE proximity orders on the bipartite "
                      "graph (40 labels per floor)")

    # Second-order only is at least as good as using the first-order term,
    # whether alone or combined (paper's stated observation).
    assert results["line"].micro_f >= results["line-first"].micro_f - 0.02
    assert results["line"].micro_f >= results["line-combined"].micro_f - 0.05
