"""Fig. 17 — robustness to sparse RF environments (fraction of MACs on-site).

Paper: even when only 10% of the MAC addresses exist in the building GRAFICS
stays above 0.8 F-score, and reaches >0.9 with 30–40% of the MACs.

Reproduction: sweep the available-MAC fraction over {0.1, 0.4, 0.7, 1.0} on
one building from each corpus and check that degradation is graceful.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory

FRACTIONS = (0.2, 0.4, 0.7, 1.0)


def sweep(dataset, corpus_name):
    rows = []
    scores = {}
    for fraction in FRACTIONS:
        protocol = ExperimentProtocol(labels_per_floor=4, repetitions=1,
                                      mac_fraction=fraction, seed=0)
        result = run_repeated("GRAFICS", grafics_factory(), dataset, protocol,
                              extra={"mac_fraction": fraction,
                                     "corpus": corpus_name})
        scores[fraction] = result
        rows.append(result.as_row())
    return rows, scores


def test_fig17_mac_fraction(benchmark, hong_kong_corpus):
    # The mall has the largest MAC vocabulary, so even the 20% point keeps a
    # workable number of APs per floor.
    dataset = next(d for d in hong_kong_corpus
                   if d.building_id == "hk-mall-a")
    rows, scores = benchmark.pedantic(lambda: sweep(dataset, "hong-kong"),
                                      rounds=1, iterations=1)
    save_table("fig17_mac_fraction", rows,
               columns=["method", "mac_fraction", "corpus", "micro_f",
                        "macro_f"],
               header="Fig. 17 — GRAFICS F-scores vs fraction of MACs "
                      "available on-site (4 labels per floor)")

    # Graceful degradation: the full vocabulary is near-ideal, accuracy falls
    # monotonically as MACs are removed, and even the 20% point stays well
    # above the 25% chance level of this four-floor building.  (The paper's
    # absolute levels at small fractions are higher because its buildings
    # carry several hundred MACs, so 10-40% still leaves a dense deployment.)
    assert scores[1.0].micro_f > 0.85
    assert scores[0.4].micro_f > 0.5
    assert scores[0.2].micro_f > 0.4
    micro = [scores[f].micro_f for f in FRACTIONS]
    assert micro == sorted(micro)
