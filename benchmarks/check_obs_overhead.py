"""Disabled-path overhead smoke: observability off must cost ~nothing.

Two checks, both machine-independent (they compare two measurements taken
in the same process moments apart, never an absolute number against a
recorded baseline — CI runners and the reference container differ too much
for that):

1. **Micro**: a ``with obs.span(...)`` block while disabled must cost well
   under a microsecond-scale budget per call — it is two attribute calls on
   a shared singleton, no allocation, no clock read.
2. **Macro**: the smoke-sized cold serving path with observability disabled
   must not be slower than the same path with full tracing enabled beyond a
   generous noise margin.  Tracing does strictly more work, so a disabled
   run that loses to a traced run by more than the margin means the
   disabled path regressed (e.g. an instrumentation point started
   allocating or reading a clock unconditionally).  The ratio is the
   *median over several interleaved disabled/traced rounds* (alternating
   which mode runs first) — a single A/B pair is at the mercy of one noisy
   neighbour on a shared runner, the median of interleaved rounds is not.

Run from CI after the benchmark smokes; exits non-zero on violation.
"""

from __future__ import annotations

import statistics
import sys
import time
import timeit

from repro.core import GRAFICS
from repro.data import make_experiment_split, three_story_campus_building
from repro.obs import runtime as obs

from bench_online_inference import CONFIG, SMOKE, measure_cold_serving

#: Per-call budget for a disabled span block.  Two orders of magnitude
#: above the measured cost (~0.3µs) so CI-runner noise cannot trip it,
#: but far below the cost of an accidental allocation + clock read path.
MAX_DISABLED_SPAN_SECONDS = 20e-6

#: The disabled run must reach at least this fraction of the traced run's
#: throughput.  Disabled does strictly less work, so the true ratio is
#: >= 1.0; the margin absorbs shared-runner noise.
MIN_DISABLED_OVER_TRACED = 0.7

#: Interleaved disabled/traced rounds the macro check medians over.
AB_ROUNDS = 5


def check_null_span_cost() -> float:
    obs.disable()

    def body():
        with obs.span("overhead-probe") as span:
            span.set("k", 1)

    per_call = min(timeit.repeat(body, repeat=5, number=20000)) / 20000
    print(f"disabled span cost: {per_call * 1e9:.0f} ns/call "
          f"(budget {MAX_DISABLED_SPAN_SECONDS * 1e9:.0f} ns)")
    assert per_call < MAX_DISABLED_SPAN_SECONDS, (
        f"disabled obs.span costs {per_call * 1e6:.2f}us per call; the "
        "zero-allocation no-op path has regressed")
    return per_call


def check_cold_path_ratio() -> tuple[float, float]:
    sizes = SMOKE
    dataset = three_story_campus_building(
        records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]

    def measure(traced: bool) -> float:
        if traced:
            obs.enable()
        else:
            obs.disable()
        try:
            result = measure_cold_serving({"model": model}, dataset, probes,
                                          sizes["cold_predicts"])
        finally:
            obs.disable()
        return result["model"]["records_per_s"]

    # Interleave the A/B pairs and alternate which mode goes first: a CPU
    # frequency ramp or a noisy neighbour then hits both modes evenly, and
    # the median round is representative where a single pair is a lottery.
    ratios: list[float] = []
    rounds: list[tuple[float, float]] = []
    for round_index in range(AB_ROUNDS):
        if round_index % 2 == 0:
            disabled = measure(traced=False)
            traced = measure(traced=True)
        else:
            traced = measure(traced=True)
            disabled = measure(traced=False)
        rounds.append((disabled, traced))
        ratios.append(disabled / traced)
    ratio = statistics.median(ratios)
    disabled, traced = rounds[ratios.index(ratio)] \
        if ratio in ratios else rounds[0]
    print(f"cold path over {AB_ROUNDS} interleaved rounds: median "
          f"disabled/traced {ratio:.2f} (floor {MIN_DISABLED_OVER_TRACED}); "
          f"per-round ratios {[f'{r:.2f}' for r in ratios]}")
    assert ratio >= MIN_DISABLED_OVER_TRACED, (
        f"cold path with observability disabled lost to the fully traced "
        f"run (median ratio {ratio:.2f} over {AB_ROUNDS} interleaved "
        "rounds); the disabled path is doing real work")
    return disabled, traced


def main() -> int:
    started = time.perf_counter()
    check_null_span_cost()
    check_cold_path_ratio()
    print(f"obs overhead smoke passed in "
          f"{time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
