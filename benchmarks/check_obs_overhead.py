"""Disabled-path overhead smoke: observability off must cost ~nothing.

Two checks, both machine-independent (they compare two measurements taken
in the same process moments apart, never an absolute number against a
recorded baseline — CI runners and the reference container differ too much
for that):

1. **Micro**: a ``with obs.span(...)`` block while disabled must cost well
   under a microsecond-scale budget per call — it is two attribute calls on
   a shared singleton, no allocation, no clock read.
2. **Macro**: the smoke-sized cold serving path with observability disabled
   must not be slower than the same path with full tracing enabled beyond a
   generous noise margin.  Tracing does strictly more work, so a disabled
   run that loses to a traced run by more than the margin means the
   disabled path regressed (e.g. an instrumentation point started
   allocating or reading a clock unconditionally).

Run from CI after the benchmark smokes; exits non-zero on violation.
"""

from __future__ import annotations

import sys
import time
import timeit

from repro.core import GRAFICS
from repro.data import make_experiment_split, three_story_campus_building
from repro.obs import runtime as obs

from bench_online_inference import CONFIG, SMOKE, measure_cold_serving

#: Per-call budget for a disabled span block.  Two orders of magnitude
#: above the measured cost (~0.3µs) so CI-runner noise cannot trip it,
#: but far below the cost of an accidental allocation + clock read path.
MAX_DISABLED_SPAN_SECONDS = 20e-6

#: The disabled run must reach at least this fraction of the traced run's
#: throughput.  Disabled does strictly less work, so the true ratio is
#: >= 1.0; the margin absorbs shared-runner noise.
MIN_DISABLED_OVER_TRACED = 0.7


def check_null_span_cost() -> float:
    obs.disable()

    def body():
        with obs.span("overhead-probe") as span:
            span.set("k", 1)

    per_call = min(timeit.repeat(body, repeat=5, number=20000)) / 20000
    print(f"disabled span cost: {per_call * 1e9:.0f} ns/call "
          f"(budget {MAX_DISABLED_SPAN_SECONDS * 1e9:.0f} ns)")
    assert per_call < MAX_DISABLED_SPAN_SECONDS, (
        f"disabled obs.span costs {per_call * 1e6:.2f}us per call; the "
        "zero-allocation no-op path has regressed")
    return per_call


def check_cold_path_ratio() -> tuple[float, float]:
    sizes = SMOKE
    dataset = three_story_campus_building(
        records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]

    def best_of(runs: int = 3) -> float:
        best = 0.0
        for _ in range(runs):
            result = measure_cold_serving(model, dataset, probes,
                                          sizes["cold_predicts"])
            best = max(best, result["records_per_s"])
        return best

    obs.disable()
    disabled = best_of()
    obs.enable()
    try:
        traced = best_of()
    finally:
        obs.disable()
    ratio = disabled / traced
    print(f"cold path: disabled {disabled:.1f} rec/s, traced {traced:.1f} "
          f"rec/s (disabled/traced {ratio:.2f}, floor "
          f"{MIN_DISABLED_OVER_TRACED})")
    assert ratio >= MIN_DISABLED_OVER_TRACED, (
        f"cold path with observability disabled ({disabled:.1f} rec/s) lost "
        f"to the fully traced run ({traced:.1f} rec/s) by more than the "
        "noise margin; the disabled path is doing real work")
    return disabled, traced


def main() -> int:
    started = time.perf_counter()
    check_null_span_cost()
    check_cold_path_ratio()
    print(f"obs overhead smoke passed in "
          f"{time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
