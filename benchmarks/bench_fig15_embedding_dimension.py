"""Fig. 15 — insensitivity of GRAFICS to the embedding dimension.

Paper: micro- and macro-F stay essentially flat as the embedding dimension
varies from 2^2 to 2^8, so deployment does not need a careful choice.

Reproduction: sweep the dimension over {4, 8, 16, 32, 64} on one building and
check that the spread between the best and worst dimension stays small.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory

DIMENSIONS = (4, 8, 16, 32)


def sweep(dataset):
    protocol = ExperimentProtocol(labels_per_floor=4, repetitions=1, seed=0)
    rows = []
    scores = {}
    for dimension in DIMENSIONS:
        result = run_repeated(f"GRAFICS(d={dimension})",
                              grafics_factory(dimension=dimension),
                              dataset, protocol,
                              extra={"dimension": dimension})
        scores[dimension] = result
        rows.append(result.as_row())
    return rows, scores


def test_fig15_embedding_dimension(benchmark, microsoft_corpus):
    dataset = microsoft_corpus[0]
    rows, scores = benchmark.pedantic(lambda: sweep(dataset), rounds=1,
                                      iterations=1)
    save_table("fig15_embedding_dimension", rows,
               columns=["method", "dimension", "micro_f", "macro_f"],
               header="Fig. 15 — GRAFICS F-scores vs embedding dimension "
                      "(4 labels per floor)")

    micro = [scores[d].micro_f for d in DIMENSIONS]
    assert min(micro) > 0.8
    assert max(micro) - min(micro) < 0.15
