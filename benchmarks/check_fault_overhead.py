"""Disabled-failpoint overhead smoke: fault injection off must cost ~nothing.

The failpoint sites compiled into the serving and persistence hot paths
(``serve.compute``, ``checkpoint.write``, ...) follow the observability
layer's null-path discipline: with no plan installed, ``failpoints.fire``
is one module-global read and an ``is None`` check — no allocation, no
lock, no dict lookup.  Two checks enforce that, both machine-independent
(same-process A/B comparisons, never an absolute number against a stored
baseline):

1. **Micro**: a disabled ``failpoints.fire`` call must cost well under a
   microsecond-scale budget.
2. **Macro**: the smoke-sized cold serving path with failpoints disabled
   must not be slower than the same path with a plan *armed* on an
   unrelated site beyond a generous noise margin.  The armed run does
   strictly more work per fire (plan lookup, hit counting under a lock),
   so a disabled run losing by more than the margin means the disabled
   path regressed.  Median over interleaved rounds, like
   ``check_obs_overhead.py``.

Run from CI after the chaos-drill smoke; exits non-zero on violation.
"""

from __future__ import annotations

import statistics
import sys
import time
import timeit

from repro import faults
from repro.core import GRAFICS
from repro.data import make_experiment_split, three_story_campus_building
from repro.faults import FaultPlan

from bench_online_inference import CONFIG, SMOKE, measure_cold_serving

#: Per-call budget for a disabled ``failpoints.fire``.  Two orders of
#: magnitude above the measured cost (~60ns) so runner noise cannot trip
#: it, but far below an accidental allocation or lock acquisition.
MAX_DISABLED_FIRE_SECONDS = 5e-6

#: The disabled run must reach at least this fraction of the armed run's
#: throughput (disabled does strictly less work; margin absorbs noise).
MIN_DISABLED_OVER_ARMED = 0.7

#: Interleaved disabled/armed rounds the macro check medians over.
AB_ROUNDS = 5


def check_disabled_fire_cost() -> float:
    faults.uninstall()

    def body():
        faults.fire("serve.compute")

    per_call = min(timeit.repeat(body, repeat=5, number=20000)) / 20000
    print(f"disabled failpoint fire: {per_call * 1e9:.0f} ns/call "
          f"(budget {MAX_DISABLED_FIRE_SECONDS * 1e9:.0f} ns)")
    assert per_call < MAX_DISABLED_FIRE_SECONDS, (
        f"disabled failpoints.fire costs {per_call * 1e6:.2f}us per call; "
        "the null-path check has regressed")
    return per_call


def check_cold_path_ratio() -> tuple[float, float]:
    sizes = SMOKE
    dataset = three_story_campus_building(
        records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]

    def measure(armed: bool) -> float:
        if armed:
            # Armed on a site the cold serving path never reaches, and a
            # hit number it will never count to on the sites it does: the
            # plan machinery runs on every serve.compute fire but injects
            # nothing, isolating the bookkeeping cost.
            faults.install(FaultPlan().fail("retrain.fit",
                                            hits=[10 ** 9]))
        else:
            faults.uninstall()
        try:
            result = measure_cold_serving({"model": model}, dataset, probes,
                                          sizes["cold_predicts"])
        finally:
            faults.uninstall()
        return result["model"]["records_per_s"]

    ratios: list[float] = []
    rounds: list[tuple[float, float]] = []
    for round_index in range(AB_ROUNDS):
        if round_index % 2 == 0:
            disabled = measure(armed=False)
            armed = measure(armed=True)
        else:
            armed = measure(armed=True)
            disabled = measure(armed=False)
        rounds.append((disabled, armed))
        ratios.append(disabled / armed)
    ratio = statistics.median(ratios)
    print(f"cold path over {AB_ROUNDS} interleaved rounds: median "
          f"disabled/armed {ratio:.2f} (floor {MIN_DISABLED_OVER_ARMED}); "
          f"per-round ratios {[f'{r:.2f}' for r in ratios]}")
    assert ratio >= MIN_DISABLED_OVER_ARMED, (
        f"cold path with failpoints disabled lost to the armed run "
        f"(median ratio {ratio:.2f} over {AB_ROUNDS} interleaved rounds); "
        "the disabled failpoint path is doing real work")
    return rounds[0]


def main() -> int:
    started = time.perf_counter()
    check_disabled_fire_cost()
    check_cold_path_ratio()
    print(f"fault-injection overhead smoke passed in "
          f"{time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
