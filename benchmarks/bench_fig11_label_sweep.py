"""Fig. 11 — F-scores vs the number of labeled samples per floor.

Paper: on both corpora GRAFICS reaches ~0.96 micro-/macro-F with only four
labeled samples per floor; the supervised baselines (Scalable-DNN, SAE) need
hundreds of labels to catch up, and MDS / autoencoder barely benefit from
more labels.

Reproduction: sweep the per-floor label budget over {1, 4, 40, 100} for the
five methods on subsets of both synthetic corpora and check the shape:
GRAFICS is the best method at 4 labels by a clear margin, and the supervised
baselines improve substantially as labels grow.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_corpus

from conftest import save_table
from methods import paper_method_factories

LABEL_BUDGETS = (1, 4, 40)


def sweep(datasets, corpus_name):
    factories = paper_method_factories()
    rows = []
    scores = {}
    for budget in LABEL_BUDGETS:
        protocol = ExperimentProtocol(labels_per_floor=budget, repetitions=1,
                                      seed=0)
        for method, factory in factories.items():
            result = run_corpus(method, factory, datasets, protocol,
                                extra={"labels_per_floor": budget,
                                       "corpus": corpus_name})
            scores[(method, budget)] = result
            rows.append(result.as_row())
    return rows, scores


def check_shape(scores):
    grafics_at_4 = scores[("GRAFICS", 4)]
    # GRAFICS is near ceiling with only 4 labels per floor ...
    assert grafics_at_4.micro_f > 0.85
    # ... and is not beaten by any baseline at that budget.
    for method in ("Scalable-DNN", "SAE", "MDS+Prox", "Autoencoder+Prox"):
        assert grafics_at_4.micro_f >= scores[(method, 4)].micro_f - 0.01
    # The supervised baselines benefit from one-plus order of magnitude more labels.
    for method in ("Scalable-DNN", "SAE"):
        assert scores[(method, 40)].micro_f > scores[(method, 1)].micro_f


def test_fig11_microsoft(benchmark, microsoft_corpus):
    # The two smallest buildings keep the sweep tractable on a laptop.
    datasets = sorted(microsoft_corpus, key=len)[:2]
    rows, scores = benchmark.pedantic(lambda: sweep(datasets, "microsoft"),
                                      rounds=1, iterations=1)
    save_table("fig11_label_sweep_microsoft", rows,
               columns=["method", "labels_per_floor", "micro_f", "macro_f"],
               header="Fig. 11(a) — F-scores vs labels per floor "
                      "(Microsoft-like corpus)")
    check_shape(scores)


def test_fig11_hong_kong(benchmark, hong_kong_corpus):
    datasets = [d for d in hong_kong_corpus
                if d.building_id in ("hk-office-b", "hk-mall-a")]
    rows, scores = benchmark.pedantic(lambda: sweep(datasets, "hong-kong"),
                                      rounds=1, iterations=1)
    save_table("fig11_label_sweep_hong_kong", rows,
               columns=["method", "labels_per_floor", "micro_f", "macro_f"],
               header="Fig. 11(b) — F-scores vs labels per floor "
                      "(Hong Kong-like corpus)")
    check_shape(scores)
