"""CI smoke: boot the ObsServer against a live service and scrape it.

Trains one small building, wraps the serving stack in a
:class:`~repro.obs.server.ObsServer` on an ephemeral port, and asserts —
over real HTTP, stdlib ``urllib`` only — that

* ``/metrics`` serves a payload the Prometheus text format accepts (every
  sample line parses, every family has exactly one ``# TYPE``, histogram
  ``le`` buckets are cumulative and end in ``+Inf``),
* ``/healthz`` and ``/slo`` serve well-formed JSON with the expected keys,
* ``/spans`` serves JSON lines for spans recorded while tracing.

Exits non-zero on any violation; run from CI after the unit suite.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request

from repro import (EmbeddingConfig, FloorServingService, GraficsConfig,
                   ObsServer)
from repro.data import make_experiment_split, small_test_building
from repro.obs import runtime as obs

#: A metric line is ``name{labels} value`` or ``name value``; a quick
#: structural grammar is enough to catch a broken exposition writer.
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


def _fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def parse_prometheus(text: str) -> dict[str, list[tuple[str, float]]]:
    """Parse the exposition text; raises on any malformed line.

    Returns family -> [(sample name with labels, value)].  Mirrors the
    subset of the format the writer emits: ``# TYPE`` comments and bare
    samples with optional ``{le="..."}`` labels.
    """
    import re

    families: dict[str, list[tuple[str, float]]] = {}
    typed: dict[str, str] = {}
    sample_re = re.compile(rf"^({_NAME})(\{{[^}}]*\}})? (\S+)$")
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            if family in typed:
                raise ValueError(f"line {line_number}: duplicate # TYPE for "
                                 f"family {family!r}")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {line_number}: unknown type {kind!r}")
            typed[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        name, labels, raw_value = match.groups()
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        if family not in typed:
            raise ValueError(f"line {line_number}: sample {name!r} precedes "
                             "its # TYPE comment")
        families.setdefault(family, []).append(
            (name + (labels or ""), float(raw_value)))
    return families


def build_service() -> FloorServingService:
    config = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=8.0,
                                                     seed=0),
                           allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=2, records_per_floor=25,
                                  aps_per_floor=10, seed=50,
                                  building_id="bldg-A")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)
    for record in split.test_records[:10]:
        service.predict(record.without_floor())
    return service


def main() -> int:
    started = time.perf_counter()
    obs.enable()
    try:
        service = build_service()
        with ObsServer(service) as server:
            base = server.url

            status, body = _fetch(f"{base}/metrics")
            assert status == 200, f"/metrics returned {status}"
            families = parse_prometheus(body.decode("utf-8"))
            assert "repro_requests_total" in families, sorted(families)
            histogram = dict(families["repro_request_seconds"])
            buckets = [(name, value) for name, value in histogram.items()
                       if "_bucket" in name]
            assert buckets and buckets[-1][0].endswith('le="+Inf"}'), buckets
            counts = [value for _, value in buckets]
            assert counts == sorted(counts), "buckets must be cumulative"

            status, body = _fetch(f"{base}/healthz")
            assert status == 200, f"/healthz returned {status}"
            health = json.loads(body)
            assert health["status"] in ("healthy", "degraded")
            assert "bldg-A" in health["buildings"]

            status, body = _fetch(f"{base}/slo")
            slo = json.loads(body)
            assert status == 200 and isinstance(slo["objectives"], list)

            status, body = _fetch(f"{base}/spans?limit=16")
            assert status == 200, f"/spans returned {status}"
            spans = [json.loads(line) for line in body.decode().splitlines()]
            assert spans and all("trace_id" in span for span in spans)

        print(f"obs server smoke passed in "
              f"{time.perf_counter() - started:.1f}s "
              f"({len(families)} metric families, "
              f"{len(health['buildings'])} buildings, {len(spans)} spans)")
        return 0
    finally:
        obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
