"""Fig. 16 — impact of the edge-weight function.

Paper: the offset weight f(RSS) = RSS + 120 clearly outperforms the
dBm-to-power conversion g(RSS) = 10^(RSS/10), because g squashes typical
indoor RSS values into nearly identical tiny weights and the embedding loses
the RSS differences.

Reproduction: GRAFICS with f vs GRAFICS with g on one building from each
corpus, four labels per floor.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory, grafics_power_weight_factory


def compare(dataset, corpus_name):
    protocol = ExperimentProtocol(labels_per_floor=4, repetitions=3, seed=0)
    offset = run_repeated("f(RSS)=RSS+120", grafics_factory(), dataset,
                          protocol, extra={"corpus": corpus_name})
    power = run_repeated("g(RSS)=10^(RSS/10)", grafics_power_weight_factory(),
                         dataset, protocol, extra={"corpus": corpus_name})
    return offset, power


def test_fig16_weight_function(benchmark, microsoft_corpus, hong_kong_corpus):
    ms_building = microsoft_corpus[2]
    hk_building = next(d for d in hong_kong_corpus
                       if d.building_id == "hk-hospital")

    def run():
        return compare(ms_building, "microsoft"), compare(hk_building, "hong-kong")

    (ms_offset, ms_power), (hk_offset, hk_power) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = [r.as_row() for r in (ms_offset, ms_power, hk_offset, hk_power)]
    save_table("fig16_weight_function", rows,
               columns=["method", "corpus", "micro_p", "micro_r", "micro_f",
                        "macro_f"],
               header="Fig. 16 — offset weight f vs power weight g "
                      "(4 labels per floor)")

    assert ms_offset.micro_f >= ms_power.micro_f
    assert hk_offset.micro_f >= hk_power.micro_f
    # On at least one corpus the gap is substantial, as in the paper.
    assert (ms_offset.micro_f - ms_power.micro_f > 0.05
            or hk_offset.micro_f - hk_power.micro_f > 0.05)
