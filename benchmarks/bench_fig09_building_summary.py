"""Fig. 9 — summary of the evaluated buildings.

Paper: a scatter of the 200+ buildings showing 2–12 floors, a wide range of
areas, up to ~2,500 MACs and up to ~50k records per building.

Reproduction: the same summary over the synthetic Microsoft-like and Hong
Kong-like corpora, asserting the corpus spans heterogeneous building heights
and sizes.  The benchmark times corpus summarisation.
"""

from __future__ import annotations

from repro.data import summarize_corpus

from conftest import save_table


def test_fig09_building_summary(benchmark, microsoft_corpus, hong_kong_corpus):
    corpus = list(microsoft_corpus) + list(hong_kong_corpus)
    summaries = benchmark.pedantic(lambda: summarize_corpus(corpus),
                                   rounds=3, iterations=1)

    rows = [s.as_row() for s in summaries]
    save_table("fig09_building_summary", rows,
               header="Fig. 9 — per-building summary of the synthetic corpora "
                      "(stand-ins for the Microsoft and Hong Kong datasets)")

    floors = [s.num_floors for s in summaries]
    assert min(floors) >= 2
    assert max(floors) >= 8
    assert len({s.building_id for s in summaries}) == len(summaries)
    areas = [s.area_m2 for s in summaries if s.area_m2]
    assert max(areas) / min(areas) > 2.0
