"""Pool guardrail smoke: workers=0 untouched, workers=1 overhead bounded.

Two checks, both machine-independent (they compare measurements taken in
the same process moments apart, never an absolute number against a
recorded baseline — CI runners and the reference container differ too
much for that):

1. **Disabled path**: ``compute_workers=0`` (the default) must build no
   pool at all — ``service.compute_pool is None``, no pool key in the
   telemetry snapshot, and no ``compute_pool_*`` counters minted.  The
   opt-out is structural, not a runtime branch that could still pay.
2. **Dispatch overhead**: the *sequential single-record* cold path with
   ``compute_workers=1`` must reach at least ``MIN_POOLED_OVER_INPROCESS``
   of the in-process throughput.  One record per request is the pool's
   worst case — every predict pays a full dispatch round trip (pickle the
   record over the pipe, compute, pickle the prediction back) with zero
   batching to amortise it — so this is the honest upper bound on the
   per-request tax.  The ratio is the *median over several interleaved
   in-process/pooled rounds* (alternating which mode runs first) — a
   single A/B pair is at the mercy of one noisy neighbour on a shared
   runner, the median of interleaved rounds is not.

Run from CI after the benchmark smokes; exits non-zero on violation.
"""

from __future__ import annotations

import multiprocessing
import statistics
import sys
import time

from repro.core import GRAFICS
from repro.core.registry import MultiBuildingFloorService
from repro.data import make_experiment_split, three_story_campus_building
from repro.serving import FloorServingService, ServingConfig

from bench_online_inference import CONFIG, SMOKE

#: The pooled sequential cold path must reach this fraction of in-process
#: throughput (acceptance line: workers=1 dispatch overhead <= 25% on the
#: single-CPU reference container).
MIN_POOLED_OVER_INPROCESS = 0.75

#: Interleaved in-process/pooled rounds the ratio check medians over.
AB_ROUNDS = 5


def _service(model, building_id: str, workers: int) -> FloorServingService:
    registry = MultiBuildingFloorService(CONFIG)
    registry.install_model(building_id, model)
    kwargs: dict = {"enable_cache": False, "compute_workers": workers}
    if workers:
        kwargs["compute_start_method"] = (
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
    return FloorServingService(registry=registry,
                               config=ServingConfig(**kwargs))


def check_disabled_path(model, dataset, probes) -> None:
    service = _service(model, dataset.building_id, workers=0)
    assert service.compute_pool is None, (
        "compute_workers=0 must not construct a ComputePool")
    service.predict(probes[0])
    snapshot = service.telemetry_snapshot()
    assert "compute_pool" not in snapshot, (
        "disabled pool leaked a compute_pool telemetry section")
    counters = snapshot.get("counters", {})
    leaked = [name for name in counters if name.startswith("compute_pool_")]
    assert not leaked, f"disabled pool minted counters: {leaked}"
    print("disabled path: compute_workers=0 builds no pool, no pool "
          "telemetry")


def check_dispatch_overhead(model, dataset, probes) -> float:
    cold_predicts = SMOKE["cold_predicts"]
    inproc = _service(model, dataset.building_id, workers=0)
    pooled = _service(model, dataset.building_id, workers=1)
    try:
        # Warm-up: engine build in-process, snapshot ship + engine rebuild
        # in the worker.  Steady state is what the ratio is about.
        inproc.predict(probes[0])
        pooled.predict(probes[0])

        def measure(service: FloorServingService) -> float:
            start = time.perf_counter()
            for i in range(cold_predicts):
                service.predict(probes[i % len(probes)])
            return cold_predicts / (time.perf_counter() - start)

        # Interleave and alternate which mode goes first: a CPU frequency
        # ramp or a noisy neighbour then hits both modes evenly, and the
        # median round is representative where a single pair is a lottery.
        ratios: list[float] = []
        for round_index in range(AB_ROUNDS):
            if round_index % 2 == 0:
                base = measure(inproc)
                pool = measure(pooled)
            else:
                pool = measure(pooled)
                base = measure(inproc)
            ratios.append(pool / base)
    finally:
        pooled.close()
    ratio = statistics.median(ratios)
    print(f"sequential cold path over {AB_ROUNDS} interleaved rounds: "
          f"median pooled/in-process {ratio:.2f} "
          f"(floor {MIN_POOLED_OVER_INPROCESS}); "
          f"per-round ratios {[f'{r:.2f}' for r in ratios]}")
    assert ratio >= MIN_POOLED_OVER_INPROCESS, (
        f"workers=1 sequential dispatch overhead exceeded budget (median "
        f"pooled/in-process ratio {ratio:.2f} over {AB_ROUNDS} interleaved "
        "rounds); per-request dispatch got expensive")
    return ratio


def main() -> int:
    started = time.perf_counter()
    sizes = SMOKE
    dataset = three_story_campus_building(
        records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]
    check_disabled_path(model, dataset, probes)
    check_dispatch_overhead(model, dataset, probes)
    print(f"pool overhead smoke passed in "
          f"{time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
