"""Section V-A — cost of online inference.

Paper: a new sample's embedding is learned with all other embeddings frozen,
which "is computationally inexpensive and can be done in real-time".

Reproduction: measure (a) the per-sample latency of the frozen-graph online
inference and (b) the cost of the naive alternative — refitting the whole
embedding with the new sample included — and check that online inference is
at least an order of magnitude cheaper.

Run standalone (``--smoke`` for the CI-sized variant) or via pytest; both
print one machine-readable JSON summary line prefixed ``BENCH_JSON``, like
the other serving/stream benchmarks, so CI logs can be scraped for
regressions.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.core import GRAFICS, GraficsConfig, EmbeddingConfig, build_graph
from repro.core.embedding import ELINEEmbedder
from repro.data import make_experiment_split, three_story_campus_building

from conftest import save_table

CONFIG = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0),
                       allow_unreachable_clusters=True)

FULL = {"records_per_floor": 100, "probes": 10}
SMOKE = {"records_per_floor": 40, "probes": 5}


def run(sizes, label, dataset=None) -> dict:
    """Measure online inference vs full refit; print + persist the table."""
    if dataset is None:
        dataset = three_story_campus_building(
            records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]

    # Reference: full embedding refit with one extra record.
    graph = build_graph(list(split.train_records) + [probes[0]])
    start = time.perf_counter()
    ELINEEmbedder(CONFIG.resolved_embedding_config()).fit(graph)
    full_refit_seconds = time.perf_counter() - start

    # Timed: full online predictions (graph insert + frozen embedding +
    # nearest-centroid lookup + graph restore), averaged per sample.
    start = time.perf_counter()
    for probe in probes[: sizes["probes"]]:
        model.predict(probe, persist=False)
    online_seconds = (time.perf_counter() - start) / sizes["probes"]

    speedup = full_refit_seconds / max(online_seconds, 1e-9)
    rows = [
        {"approach": "online frozen-graph embedding (per sample)",
         "seconds": round(online_seconds, 4)},
        {"approach": "full embedding refit (per sample)",
         "seconds": round(full_refit_seconds, 4)},
        {"approach": "speedup", "seconds": round(speedup, 1)},
    ]
    save_table("online_inference_latency", rows,
               columns=["approach", "seconds"],
               header=f"Section V-A — online inference vs full refit ({label})")
    summary = {"benchmark": "online_inference", "mode": label,
               "online_seconds_per_sample": round(online_seconds, 6),
               "full_refit_seconds": round(full_refit_seconds, 4),
               "speedup": round(speedup, 1)}
    print("BENCH_JSON " + json.dumps(summary))

    assert online_seconds * 10 < full_refit_seconds
    return summary


def test_online_inference_latency(campus_building):
    """Pytest entry point (full sizes, shared session dataset)."""
    run(FULL, "full", dataset=campus_building)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, not minutes)")
    args = parser.parse_args(argv)
    run(SMOKE if args.smoke else FULL, "smoke" if args.smoke else "full")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
