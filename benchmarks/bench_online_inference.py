"""Section V-A — cost of online inference, plus the cold serving path.

Paper: a new sample's embedding is learned with all other embeddings frozen,
which "is computationally inexpensive and can be done in real-time".

Reproduction: measure (a) the per-sample latency of the frozen-graph online
inference and (b) the cost of the naive alternative — refitting the whole
embedding with the new sample included — and check that online inference is
at least an order of magnitude cheaper.

On top of the paper's comparison, the benchmark measures the *cold serving
path*: uncached predictions flowing through ``FloorServingService`` — route,
overlay-staged frozen embedding, nearest-centroid classify — which is the
per-record cost a production deployment pays for every fingerprint it has
not seen before.  The trajectory of that number across PRs is recorded in
``benchmarks/results/online_inference_history.jsonl`` (the cold path went
mutation-free in PR 5: overlay graphs instead of insert-embed-remove churn;
PR 10 added the process compute pool, measured here as a batched cold run
through ``compute_workers=N`` against the in-process path).

Run standalone (``--smoke`` for the CI-sized variant) or via pytest; both
print one machine-readable JSON summary line prefixed ``BENCH_JSON``, like
the other serving/stream benchmarks, so CI logs can be scraped for
regressions.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import replace
from pathlib import Path

from repro.core import GRAFICS, GraficsConfig, EmbeddingConfig, build_graph
from repro.core.embedding import ELINEEmbedder
from repro.core.registry import MultiBuildingFloorService
from repro.data import make_experiment_split, three_story_campus_building
from repro.obs import runtime as obs
from repro.obs.tracer import stage_breakdown
from repro.serving import FloorServingService, ServingConfig

from conftest import save_table

CONFIG = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0),
                       allow_unreachable_clusters=True)

FULL = {"records_per_floor": 100, "probes": 10, "cold_predicts": 150}
SMOKE = {"records_per_floor": 40, "probes": 5, "cold_predicts": 40}


def measure_cold_serving(models: dict, dataset, probes, cold_predicts: int,
                         repeats: int = 3) -> dict:
    """Cold-path throughput of uncached predictions, one entry per model.

    The cache is disabled so every prediction takes the full cold path:
    routing, overlay-staged frozen embedding against the trained model and
    the nearest-centroid lookup.  This is the number the mutation-free
    online path (PR 5) targets.  All models are measured in *alternating*
    passes and each reports its best pass: this benchmark compares sampler
    modes against each other and across PRs, and sequential blocks are at
    the mercy of host clock drift (sustained runs on the CI hosts have
    been observed to sag by tens of percent within seconds, which would
    systematically penalise whichever mode runs later).
    """
    services = {}
    for name, model in models.items():
        registry = MultiBuildingFloorService(CONFIG)
        registry.install_model(dataset.building_id, model)
        service = FloorServingService(registry=registry,
                                      config=ServingConfig(enable_cache=False))
        service.predict(probes[0])                # warm-up (engine, router)
        services[name] = service
    best: dict = {name: None for name in services}
    for _ in range(repeats):
        for name, service in services.items():
            start = time.perf_counter()
            for i in range(cold_predicts):
                service.predict(probes[i % len(probes)])
            seconds = time.perf_counter() - start
            if best[name] is None or seconds < best[name]:
                best[name] = seconds
    return {name: {"records": cold_predicts,
                   "seconds": round(seconds, 4),
                   "records_per_s": round(cold_predicts / seconds, 1)}
            for name, seconds in best.items()}


def measure_pool_cold_path(model, dataset, probes, cold_predicts: int,
                           workers: int, repeats: int = 3) -> dict:
    """Cold batched predictions through the compute pool vs in-process.

    Both services run the same uncached ``predict_batch`` workload — one
    miss group chunked across the pool's worker processes (PR 10) versus
    the single-threaded in-process compute path — in alternating best-of-N
    passes, same drift discipline as :func:`measure_cold_serving`.  Probe
    copies get unique record ids so every prediction is a distinct cold
    record, and the pooled output is checked byte-for-byte against the
    in-process reference (per prediction: the pool's contract is identical
    *values*, not identical cross-record object sharing).

    Snapshot shipping happens once per worker during the identity pass, so
    the timed passes see the steady state a long-lived deployment pays:
    dispatch + records over the pipe, compute in the worker, results back.
    """
    batch = [replace(probes[i % len(probes)], record_id=f"pool-{i:05d}")
             for i in range(cold_predicts)]
    start_method = ("fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")

    def make(num_workers: int) -> FloorServingService:
        registry = MultiBuildingFloorService(CONFIG)
        registry.install_model(dataset.building_id, model)
        kwargs: dict = {"enable_cache": False,
                        "compute_workers": num_workers}
        if num_workers:
            kwargs["compute_start_method"] = start_method
        return FloorServingService(registry=registry,
                                   config=ServingConfig(**kwargs))

    inproc = make(0)
    pooled = make(workers)
    try:
        expected = inproc.predict_batch(batch)    # warm-up + reference
        got = pooled.predict_batch(batch)         # ships snapshots
        identical = (len(got) == len(expected) and all(
            pickle.dumps(a) == pickle.dumps(b)
            for a, b in zip(got, expected)))
        best: dict = {"inproc": None, "pool": None}
        for _ in range(repeats):
            for name, service in (("inproc", inproc), ("pool", pooled)):
                start = time.perf_counter()
                service.predict_batch(batch)
                seconds = time.perf_counter() - start
                if best[name] is None or seconds < best[name]:
                    best[name] = seconds
    finally:
        pooled.close()
    return {"workers": workers,
            "start_method": start_method,
            "identical": identical,
            "records": cold_predicts,
            "seconds": round(best["pool"], 4),
            "records_per_s": round(cold_predicts / best["pool"], 1),
            "inprocess_records_per_s": round(cold_predicts / best["inproc"],
                                             1),
            "speedup": round(best["inproc"] / best["pool"], 2)}


def measure_traced_cold_path(model, dataset, probes, cold_predicts: int,
                             artifacts_dir: str | None = None) -> dict:
    """The cold serving path again, with the observability layer enabled.

    Reports throughput with tracing on (the overhead side of the ledger)
    plus the per-stage cost breakdown of the online path — alias-table
    build vs frozen SGD vs everything else — scraped from the tracer's
    aggregated spans.  With ``artifacts_dir`` the raw spans (JSONL) and the
    metrics snapshot are written out for CI to archive.
    """
    tracer, metrics = obs.enable()
    try:
        registry = MultiBuildingFloorService(CONFIG)
        registry.install_model(dataset.building_id, model)
        service = FloorServingService(registry=registry,
                                      config=ServingConfig(enable_cache=False))
        service.predict(probes[0])                # warm-up (engine, router)
        tracer.drain()
        start = time.perf_counter()
        for i in range(cold_predicts):
            service.predict(probes[i % len(probes)])
        seconds = time.perf_counter() - start

        # Restrict to the embed.* leaf stages: their shares partition the
        # per-request embedding cost (parents like ``serving.request`` would
        # double-count their children and dilute every share).
        spans = tracer.spans()
        stages = stage_breakdown(spans, prefix="embed.")
        shares = {name: round(info["share"], 3)
                  for name, info in stages.items()}
        if artifacts_dir is not None:
            directory = Path(artifacts_dir)
            directory.mkdir(parents=True, exist_ok=True)
            tracer.export_jsonl(directory / "spans.jsonl")
            (directory / "metrics.json").write_text(metrics.to_json())
            (directory / "metrics.prom").write_text(
                metrics.to_prometheus_text())
        return {"records": cold_predicts,
                "seconds": round(seconds, 4),
                "records_per_s": round(cold_predicts / seconds, 1),
                "stage_shares": shares}
    finally:
        obs.disable()


def run(sizes, label, dataset=None, artifacts_dir: str | None = None,
        pool_workers: int | None = None) -> dict:
    """Measure online inference vs full refit; print + persist the table."""
    if pool_workers is None:
        pool_workers = max(1, min(4, os.cpu_count() or 1))
    if dataset is None:
        dataset = three_story_campus_building(
            records_per_floor=sizes["records_per_floor"], seed=7)
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor()
              for r in split.test_records[: sizes["probes"] * 2]]

    # Reference: full embedding refit with one extra record.
    graph = build_graph(list(split.train_records) + [probes[0]])
    start = time.perf_counter()
    ELINEEmbedder(CONFIG.resolved_embedding_config()).fit(graph)
    full_refit_seconds = time.perf_counter() - start

    # Timed: full online predictions (overlay staging + frozen embedding +
    # nearest-centroid lookup; the shared graph is never touched), averaged
    # per sample.
    start = time.perf_counter()
    for probe in probes[: sizes["probes"]]:
        model.predict(probe, persist=False)
    online_seconds = (time.perf_counter() - start) / sizes["probes"]

    # The same trained model served with the composed delta negative
    # sampler (sampler_mode="delta"): no per-predict O(V) alias rebuild.
    delta_model = model.with_sampler_mode("delta")
    cold_by_mode = measure_cold_serving({"exact": model, "delta": delta_model},
                                        dataset, probes,
                                        sizes["cold_predicts"])
    cold = cold_by_mode["exact"]
    delta_cold = cold_by_mode["delta"]
    pool = measure_pool_cold_path(model, dataset, probes,
                                  sizes["cold_predicts"], pool_workers)
    traced = measure_traced_cold_path(model, dataset, probes,
                                      sizes["cold_predicts"],
                                      artifacts_dir=artifacts_dir)
    delta_traced = measure_traced_cold_path(delta_model, dataset, probes,
                                            sizes["cold_predicts"])

    # Accuracy parity: both modes sample the same noise distribution, so
    # they must identify floors equally well.  Scored over the whole test
    # split (not just the timing probes) so the comparison is not at the
    # mercy of a handful of borderline records.
    parity_probes = [(r.without_floor(), r.floor) for r in split.test_records]
    exact_hits = sum(model.predict(p).floor == floor
                     for p, floor in parity_probes)
    delta_hits = sum(delta_model.predict(p).floor == floor
                     for p, floor in parity_probes)
    accuracy = {"exact": round(exact_hits / len(parity_probes), 3),
                "delta": round(delta_hits / len(parity_probes), 3),
                "records": len(parity_probes)}

    speedup = full_refit_seconds / max(online_seconds, 1e-9)
    delta_speedup = delta_cold["records_per_s"] / cold["records_per_s"]
    rows = [
        {"approach": "online frozen-graph embedding (seconds per sample)",
         "value": round(online_seconds, 4)},
        {"approach": "full embedding refit (seconds per sample)",
         "value": round(full_refit_seconds, 4)},
        {"approach": "speedup (x)", "value": round(speedup, 1)},
        {"approach": "cold serving path (records/s)",
         "value": cold["records_per_s"]},
        {"approach": "cold serving path, tracing enabled (records/s)",
         "value": traced["records_per_s"]},
        {"approach": "alias-table build share of traced spans",
         "value": traced["stage_shares"].get("embed.alias_build", 0.0)},
        {"approach": "cold serving path, delta sampler (records/s)",
         "value": delta_cold["records_per_s"]},
        {"approach": "delta-sampler cold-path speedup (x)",
         "value": round(delta_speedup, 2)},
        {"approach": "alias-table build share, delta sampler",
         "value": delta_traced["stage_shares"].get("embed.alias_build", 0.0)},
        {"approach": f"pooled cold batch, {pool['workers']} worker(s) "
                     f"(records/s)",
         "value": pool["records_per_s"]},
        {"approach": "pool-vs-in-process batch speedup (x)",
         "value": pool["speedup"]},
    ]
    save_table("online_inference_latency", rows,
               columns=["approach", "value"],
               header=f"Section V-A — online inference vs full refit ({label})")
    summary = {"benchmark": "online_inference", "mode": label,
               "online_seconds_per_sample": round(online_seconds, 6),
               "full_refit_seconds": round(full_refit_seconds, 4),
               "speedup": round(speedup, 1),
               "cold_path": cold,
               "traced_cold_path": traced,
               "delta_cold_path": delta_cold,
               "delta_traced_cold_path": delta_traced,
               "delta_speedup": round(delta_speedup, 2),
               "pool_cold_path": {key: pool[key]
                                  for key in ("records", "seconds",
                                              "records_per_s",
                                              "inprocess_records_per_s")},
               "pool_workers": pool["workers"],
               "pool_speedup": pool["speedup"],
               "floor_accuracy": accuracy}
    print("BENCH_JSON " + json.dumps(summary))

    assert online_seconds * 10 < full_refit_seconds
    # Tracing must report where the online path spends its time; the
    # alias-table build is the known dominant fixed cost of the exact mode
    # (ROADMAP: ~25%) — and the delta sampler must make it small.
    assert traced["stage_shares"].get("embed.alias_build", 0.0) > 0.05
    assert delta_traced["stage_shares"].get("embed.alias_build", 1.0) < 0.08
    # Accuracy-parity gate: the delta mode samples the same distribution,
    # so it must not cost floor-identification accuracy on the campus preset.
    assert accuracy["delta"] >= accuracy["exact"] - 1.0 / len(parity_probes)
    # In-run speedup floor (the history gate holds the 1.3x line against
    # the committed baseline; this catches a delta path that stopped
    # paying for itself at all).
    assert delta_speedup > 1.05
    # Pool correctness is non-negotiable: chunked multi-process compute
    # must reproduce the in-process bytes exactly.  The speed floors are
    # deliberately loose — this container has a single CPU, so workers=1
    # only has to show the dispatch overhead is modest; a genuinely
    # parallel host (spare core per worker) must show real speedup.
    assert pool["identical"], "pooled predictions diverged from in-process"
    if pool["workers"] == 1:
        assert pool["speedup"] >= 0.7, pool
    elif (os.cpu_count() or 1) > pool["workers"] and pool["records"] >= 100:
        # Full-size batch on a host with a spare core per worker: the pool
        # must pay for itself.  Smoke batches are too small to amortise
        # dispatch, so they only get the sanity floor below.
        assert pool["speedup"] >= 1.2, pool
    else:
        assert pool["speedup"] >= 0.6, pool
    return summary


def test_online_inference_latency(campus_building):
    """Pytest entry point (full sizes, shared session dataset)."""
    run(FULL, "full", dataset=campus_building)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, not minutes)")
    parser.add_argument("--obs-artifacts", metavar="DIR", default=None,
                        help="write traced spans (JSONL) and metrics "
                             "snapshots from the traced cold-path run here")
    parser.add_argument("--pool-workers", type=int, default=None,
                        help="compute-pool workers for the pooled cold-path "
                             "measurement (default: min(4, cpu count))")
    args = parser.parse_args(argv)
    run(SMOKE if args.smoke else FULL, "smoke" if args.smoke else "full",
        artifacts_dir=args.obs_artifacts, pool_workers=args.pool_workers)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
