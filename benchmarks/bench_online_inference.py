"""Section V-A — cost of online inference.

Paper: a new sample's embedding is learned with all other embeddings frozen,
which "is computationally inexpensive and can be done in real-time".

Reproduction: measure (a) the per-sample latency of the frozen-graph online
inference and (b) the cost of the naive alternative — refitting the whole
embedding with the new sample included — and check that online inference is
at least an order of magnitude cheaper.
"""

from __future__ import annotations

import time

from repro.core import GRAFICS, GraficsConfig, EmbeddingConfig, build_graph
from repro.core.embedding import ELINEEmbedder
from repro.data import make_experiment_split

from conftest import save_table

CONFIG = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0),
                       allow_unreachable_clusters=True)


def test_online_inference_latency(benchmark, campus_building):
    split = make_experiment_split(campus_building, labels_per_floor=4, seed=0)
    model = GRAFICS(CONFIG).fit(list(split.train_records), split.labels)
    probes = [r.without_floor() for r in split.test_records[:20]]

    # Timed: one full online prediction (graph insert + frozen embedding +
    # nearest-centroid lookup + graph restore).
    state = {"index": 0}

    def predict_one():
        probe = probes[state["index"] % len(probes)]
        state["index"] += 1
        return model.predict(probe, persist=False)

    benchmark.pedantic(predict_one, rounds=20, iterations=1)

    # Reference: full embedding refit with one extra record.
    graph = build_graph(list(split.train_records) + [probes[0]])
    start = time.perf_counter()
    ELINEEmbedder(CONFIG.resolved_embedding_config()).fit(graph)
    full_refit_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for probe in probes[:10]:
        model.predict(probe, persist=False)
    online_seconds = (time.perf_counter() - start) / 10

    rows = [
        {"approach": "online frozen-graph embedding (per sample)",
         "seconds": round(online_seconds, 4)},
        {"approach": "full embedding refit (per sample)",
         "seconds": round(full_refit_seconds, 4)},
        {"approach": "speedup", "seconds": round(full_refit_seconds
                                                 / max(online_seconds, 1e-9), 1)},
    ]
    save_table("online_inference_latency", rows,
               columns=["approach", "seconds"],
               header="Section V-A — online inference vs full refit")

    assert online_seconds * 10 < full_refit_seconds
