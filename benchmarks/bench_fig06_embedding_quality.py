"""Fig. 6 — quality of E-LINE embeddings vs MDS and autoencoder embeddings.

Paper: t-SNE of the embeddings of a fully labeled three-storey campus
building; E-LINE separates the three floors into clean clusters while MDS and
the autoencoder mix them.

Reproduction: instead of a qualitative picture we compute cluster-separation
metrics (silhouette, intra/inter distance ratio, nearest-neighbour floor
purity) of each method's embeddings against the ground-truth floors.  E-LINE
must dominate on every metric.  The benchmark times the E-LINE fit.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.autoencoder import ConvAutoencoder
from repro.baselines.base import MatrixFeaturizer
from repro.baselines.mds import ClassicalMDS, cosine_dissimilarity
from repro.core import ELINEEmbedder, EmbeddingConfig, build_graph
from repro.evaluation import evaluate_separation

from conftest import save_table


def test_fig06_embedding_quality(benchmark, campus_building):
    records = list(campus_building.records)
    record_ids = [r.record_id for r in records]
    floors = [r.floor for r in records]

    # --- E-LINE on the bipartite graph (timed) -----------------------------
    graph = build_graph(records)
    embedder = ELINEEmbedder(EmbeddingConfig(samples_per_edge=40.0, seed=0))
    embedding = benchmark.pedantic(lambda: embedder.fit(graph), rounds=1,
                                   iterations=1)
    eline_vectors = embedding.record_matrix(record_ids)

    # --- MDS on the dense matrix -------------------------------------------
    featurizer = MatrixFeaturizer()
    features = featurizer.fit_transform(records)
    rng = np.random.default_rng(0)
    anchors = rng.choice(len(records), size=min(400, len(records)), replace=False)
    mds = ClassicalMDS(dimension=8)
    mds.fit(cosine_dissimilarity(features[anchors]))
    mds_vectors = mds.transform(cosine_dissimilarity(features, features[anchors]))

    # --- Convolutional autoencoder on the dense matrix ----------------------
    autoencoder = ConvAutoencoder(num_features=features.shape[1],
                                  embedding_dimension=8, epochs=15, seed=0)
    autoencoder.fit(features)
    ae_vectors = autoencoder.encode(features)

    reports = [
        evaluate_separation("E-LINE (GRAFICS)", eline_vectors, floors),
        evaluate_separation("MDS", mds_vectors, floors),
        evaluate_separation("Autoencoder", ae_vectors, floors),
    ]
    save_table("fig06_embedding_quality", [r.as_row() for r in reports],
               header="Fig. 6 — floor separation of the embedding space "
                      "(higher silhouette / nn_purity and lower "
                      "intra_inter_ratio = cleaner floor clusters)")

    eline, mds_report, ae_report = reports
    assert eline.nn_purity >= mds_report.nn_purity
    assert eline.nn_purity >= ae_report.nn_purity
    assert eline.silhouette > mds_report.silhouette
    assert eline.silhouette > ae_report.silhouette
    assert eline.intra_inter_ratio < mds_report.intra_inter_ratio
    assert eline.intra_inter_ratio < ae_report.intra_inter_ratio
