"""Streaming-subsystem benchmark: ingestion throughput and swap latency.

Two measurements back the continuous-learning layer:

1. **Ingestion** — records/s through the filter → window → drift
   maintenance path (prediction disabled), i.e. the fixed per-record cost
   a deployment pays just to keep sliding windows and drift statistics
   current under crowdsourced traffic.

2. **Drift → retrain → swap** — end-to-end latency of the reactive path:
   from the first record of an AP-churn burst to the completed atomic hot
   swap of the drifted building, plus the retrain step on its own.

Run standalone (``--smoke`` for the CI-sized variant) or via pytest; both
print one machine-readable JSON summary line prefixed ``BENCH_JSON`` like
the serving-throughput benchmark's table output, so CI logs can be
scraped for regressions.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro import (
    EmbeddingConfig,
    FloorServingService,
    GraficsConfig,
    SignalRecord,
    StreamConfig,
)
from repro.data import make_experiment_split, small_test_building
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)

from conftest import save_table

FULL = {"stream_records": 2000, "window": 256, "records_per_floor": 40}
SMOKE = {"stream_records": 300, "window": 64, "records_per_floor": 25}

MIN_RECORDS_PER_S = 50.0       # sanity floor, far below real throughput
MAX_SWAP_LATENCY_S = 120.0


def _trained_service(records_per_floor):
    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=8.0, seed=0),
        allow_unreachable_clusters=True)
    service = FloorServingService(grafics_config=config)
    dataset = small_test_building(num_floors=2,
                                  records_per_floor=records_per_floor,
                                  aps_per_floor=10, seed=50,
                                  building_id="stream-bldg")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    service.fit_building(dataset.subset(split.train_records), split.labels)
    return service, split


def _stream(split, count, prefix, rename=None, label_every=3, rng_seed=0):
    rng = random.Random(rng_seed)
    pool = list(split.test_records)
    records = []
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {}
        for mac, value in base.rss.items():
            if rename is not None:
                mac = rename.get(mac, mac)
            rss[mac] = value + rng.uniform(-2.5, 2.5)
        records.append(SignalRecord(
            record_id=f"{prefix}{i:06d}", rss=rss,
            floor=base.floor if i % label_every == 0 else None))
    return records


def _stream_config(window, min_window_records):
    return StreamConfig(
        window=WindowConfig(max_records=window),
        drift=DriftConfig(vocabulary_jaccard_min=0.6, min_window_macs=8),
        scheduler=SchedulerConfig(min_window_records=min_window_records,
                                  min_labeled_records=2, warm_start=True),
        predict=False)


def measure_ingestion(sizes) -> dict:
    """Records/s through the filter + window + drift maintenance path."""
    service, split = _trained_service(sizes["records_per_floor"])
    pipeline = ContinuousLearningPipeline(
        service, _stream_config(sizes["window"], sizes["window"] * 10))
    records = _stream(split, sizes["stream_records"], "ingest-")

    start = time.perf_counter()
    results = pipeline.process_stream(records)
    seconds = time.perf_counter() - start

    accepted = sum(r.accepted for r in results)
    window = pipeline.windows.window_for("stream-bldg")
    return {
        "records": len(records),
        "accepted": accepted,
        "seconds": round(seconds, 4),
        "records_per_s": round(len(records) / seconds, 1),
        "window_records": len(window),
        "window_nodes": window.node_count,
        "evicted": window.evicted_total,
        "pruned_macs": window.pruned_macs_total,
    }


def measure_drift_retrain_swap(sizes) -> dict:
    """Latency from the start of an AP-churn burst to the completed swap."""
    service, split = _trained_service(sizes["records_per_floor"])
    pipeline = ContinuousLearningPipeline(
        service, _stream_config(sizes["window"], min_window_records=16))

    # Warm the window with in-distribution traffic, then churn half the APs.
    pipeline.process_stream(_stream(split, sizes["window"] // 2, "warm-"))
    macs = sorted({mac for record in split.test_records for mac in record.rss})
    rename = {mac: f"{mac}-new" for mac in macs[: len(macs) // 2]}
    churned = _stream(split, 4 * sizes["window"], "churn-", rename=rename,
                      rng_seed=1)

    burst_started = time.perf_counter()
    swap_latency = None
    records_to_swap = 0
    for record in churned:
        result = pipeline.process(record)
        records_to_swap += 1
        if result.swapped:
            swap_latency = time.perf_counter() - burst_started
            retrain_seconds = result.retrain.duration_seconds
            break
    if swap_latency is None:
        raise AssertionError("AP churn never triggered a retrain + hot swap")

    return {
        "records_until_swap": records_to_swap,
        "swap_latency_s": round(swap_latency, 4),
        "retrain_s": round(retrain_seconds, 4),
        "window_records_at_swap": result.retrain.window_records,
        "trigger": result.retrain.trigger,
    }


def run(sizes, label) -> dict:
    ingestion = measure_ingestion(sizes)
    swap = measure_drift_retrain_swap(sizes)
    summary = {"benchmark": "stream_ingestion", "mode": label,
               "ingestion": ingestion, "drift_retrain_swap": swap}

    rows = [
        {"metric": "ingestion records/s",
         "value": ingestion["records_per_s"]},
        {"metric": "ingestion window nodes (bounded)",
         "value": ingestion["window_nodes"]},
        {"metric": "records from churn start to swap",
         "value": swap["records_until_swap"]},
        {"metric": "drift->retrain->swap latency (s)",
         "value": swap["swap_latency_s"]},
        {"metric": "retrain step alone (s)", "value": swap["retrain_s"]},
    ]
    save_table("stream_ingestion", rows, columns=["metric", "value"],
               header=f"Streaming ingestion ({label}: "
                      f"{sizes['stream_records']} records, window "
                      f"{sizes['window']})")
    print("BENCH_JSON " + json.dumps(summary))

    assert ingestion["records_per_s"] >= MIN_RECORDS_PER_S
    assert ingestion["window_records"] <= sizes["window"]
    assert swap["swap_latency_s"] <= MAX_SWAP_LATENCY_S
    return summary


def test_stream_ingestion_and_swap_latency():
    """Pytest entry point (full sizes)."""
    run(FULL, "full")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, not minutes)")
    args = parser.parse_args(argv)
    run(SMOKE if args.smoke else FULL, "smoke" if args.smoke else "full")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
