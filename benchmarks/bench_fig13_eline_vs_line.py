"""Fig. 13 — GRAFICS with E-LINE vs GRAFICS with LINE.

Paper: with only four labels per floor, GRAFICS-with-LINE (second-order
proximity only) is clearly worse and has high variance; with 40 labels per
floor the gap closes.  E-LINE is near-ideal already at four labels.

Reproduction: run both embedders at 4 and 40 labels per floor on one building
from each corpus and check exactly that shape.
"""

from __future__ import annotations

from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory, grafics_line_factory

BUDGETS = (4, 40)


def sweep(dataset, corpus_name):
    factories = {
        "E-LINE": grafics_factory(),
        # Same edge-sample budget as E-LINE for a fair comparison.
        "LINE": grafics_line_factory(order="line", samples_per_edge=40.0),
    }
    rows = []
    scores = {}
    for budget in BUDGETS:
        protocol = ExperimentProtocol(labels_per_floor=budget, repetitions=2,
                                      seed=0)
        for method, factory in factories.items():
            result = run_repeated(method, factory, dataset, protocol,
                                  extra={"labels_per_floor": budget,
                                         "corpus": corpus_name})
            scores[(method, budget)] = result
            rows.append(result.as_row())
    return rows, scores


def check_shape(scores):
    # E-LINE is strong with only 4 labels per floor (the Hong Kong mall is the
    # hardest, most aggressively scaled-down building, hence the lower bar) ...
    assert scores[("E-LINE", 4)].micro_f > 0.75
    # ... and clearly better than LINE given the same training budget.
    assert scores[("E-LINE", 4)].micro_f >= scores[("LINE", 4)].micro_f - 0.03
    assert scores[("E-LINE", 40)].micro_f >= scores[("LINE", 40)].micro_f
    # With 40 labels E-LINE reaches its ceiling; LINE does not collapse
    # further (under the matched budget it does not fully recover either,
    # unlike the paper's LINE run which used a larger training budget).
    assert scores[("E-LINE", 40)].micro_f > 0.9
    assert scores[("LINE", 40)].micro_f >= scores[("LINE", 4)].micro_f - 0.06
    # LINE is less stable than E-LINE at 4 labels (higher run-to-run variance)
    # or simply worse on average.
    assert (scores[("LINE", 4)].micro_f_std >= scores[("E-LINE", 4)].micro_f_std
            or scores[("LINE", 4)].micro_f < scores[("E-LINE", 4)].micro_f)


def test_fig13_microsoft(benchmark, microsoft_corpus):
    # The largest-footprint building: multi-hop neighbourhoods matter there.
    dataset = max(microsoft_corpus, key=lambda d: d.metadata["area_m2"])
    rows, scores = benchmark.pedantic(lambda: sweep(dataset, "microsoft"),
                                      rounds=1, iterations=1)
    save_table("fig13_eline_vs_line_microsoft", rows,
               columns=["method", "labels_per_floor", "micro_p", "micro_r",
                        "micro_f", "macro_f", "micro_f_std"],
               header="Fig. 13(a)(c) — E-LINE vs LINE (Microsoft-like building)")
    check_shape(scores)


def test_fig13_hong_kong(benchmark, hong_kong_corpus):
    dataset = next(d for d in hong_kong_corpus
                   if d.building_id == "hk-mall-a")
    rows, scores = benchmark.pedantic(lambda: sweep(dataset, "hong-kong"),
                                      rounds=1, iterations=1)
    save_table("fig13_eline_vs_line_hong_kong", rows,
               columns=["method", "labels_per_floor", "micro_p", "micro_r",
                        "micro_f", "macro_f", "micro_f_std"],
               header="Fig. 13(b)(d) — E-LINE vs LINE (Hong Kong-like building)")
    check_shape(scores)
