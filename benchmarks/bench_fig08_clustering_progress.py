"""Fig. 8 — progress of the proximity-based hierarchical clustering.

Paper: snapshots of the clustering at 20/40/60/80/100% of the merges on a
three-storey building with four labeled samples per floor; unlabeled samples
gradually join the clusters anchored at labeled samples and the final
grouping matches the floors.

Reproduction: at each progress fraction we report the number of clusters and
the floor purity of the partial clustering (fraction of records whose cluster
majority-floor matches their own floor).  Purity must increase towards ~1 at
100%.  The benchmark times the full clustering run.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.core import ELINEEmbedder, EmbeddingConfig, build_graph
from repro.core.clustering import ProximityClustering
from repro.data import sample_labels

from conftest import save_table


def partial_purity(assignments, truth):
    """Majority-floor purity of a partial cluster assignment."""
    members = defaultdict(list)
    for record_id, cluster_id in assignments.items():
        members[cluster_id].append(truth[record_id])
    correct = 0
    for floors in members.values():
        correct += Counter(floors).most_common(1)[0][1]
    return correct / len(assignments)


def test_fig08_clustering_progress(benchmark, campus_building):
    records = list(campus_building.records)
    record_ids = [r.record_id for r in records]
    truth = {r.record_id: r.floor for r in records}
    labels = sample_labels(records, labels_per_floor=4, seed=0)

    graph = build_graph(records)
    embedding = ELINEEmbedder(EmbeddingConfig(samples_per_edge=40.0,
                                              seed=0)).fit(graph)
    vectors = embedding.record_matrix(record_ids)

    clustering = ProximityClustering(allow_unreachable=True)
    result = benchmark.pedantic(
        lambda: clustering.fit(record_ids, vectors, labels),
        rounds=1, iterations=1)

    rows = []
    purities = {}
    for percent in (20, 40, 60, 80, 100):
        assignments = result.assignments_at_fraction(percent / 100.0)
        purity = partial_purity(assignments, truth)
        purities[percent] = purity
        rows.append({
            "merge progress (%)": percent,
            "clusters": len(set(assignments.values())),
            "floor purity": round(purity, 3),
        })
    save_table("fig08_clustering_progress", rows,
               header="Fig. 8 — clusters and floor purity as the "
                      "agglomeration progresses (4 labels per floor)")

    assert rows[-1]["clusters"] == len(labels)
    assert purities[100] > 0.9
    # The number of clusters shrinks monotonically towards one per label.
    cluster_counts = [row["clusters"] for row in rows]
    assert cluster_counts == sorted(cluster_counts, reverse=True)
