"""Section VI-D (text) — insensitivity to the weight-function offset.

Paper: "We also tested different offset values and observed that the
performance is more or less the same."

Reproduction: sweep the offset alpha of f(RSS) = RSS + alpha over
{100, 120, 140} and check the spread is small.
"""

from __future__ import annotations

from repro.core.weighting import OffsetWeight
from repro.evaluation import ExperimentProtocol, run_repeated

from conftest import save_table
from methods import grafics_factory

OFFSETS = (100.0, 120.0, 140.0)


def test_ablation_offset(benchmark, campus_building):
    protocol = ExperimentProtocol(labels_per_floor=4, repetitions=1, seed=0)

    def run():
        results = {}
        for offset in OFFSETS:
            results[offset] = run_repeated(
                f"offset={offset:.0f}",
                grafics_factory(weight_function=OffsetWeight(offset=offset)),
                campus_building, protocol, extra={"offset": offset})
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table("ablation_offset", [results[o].as_row() for o in OFFSETS],
               columns=["method", "micro_f", "macro_f"],
               header="Section VI-D — GRAFICS F-scores for different weight "
                      "offsets alpha (4 labels per floor)")

    micro = [results[o].micro_f for o in OFFSETS]
    assert min(micro) > 0.8
    assert max(micro) - min(micro) < 0.1
