"""Serving-subsystem benchmark: routing speedup and end-to-end throughput.

Two measurements back the serving layer introduced for the production
deployment of the paper's online phase (Section V):

1. **Routing** — building attribution via the inverted MAC→building index
   (:class:`repro.serving.MacInvertedRouter`) against the reference linear
   vocabulary scan, at a registry size comparable to the paper's 204-building
   Microsoft corpus.  The inverted index must be at least 3x faster.

2. **Serving** — end-to-end throughput of :class:`FloorServingService`
   (router + cache + grouped batch dispatch) against the sequential
   ``MultiBuildingFloorService.predict`` loop, with cold and warm caches,
   while asserting the served predictions are identical to the reference.
"""

from __future__ import annotations

import random
import time

from repro import GraficsConfig, EmbeddingConfig, SignalRecord
from repro.core.registry import MultiBuildingFloorService
from repro.data import make_experiment_split, small_test_building
from repro.serving import FloorServingService, LinearScanRouter, MacInvertedRouter

from conftest import save_table

NUM_BUILDINGS = 60          # >= 50 per the acceptance criterion
MACS_PER_BUILDING = 150
SHARED_MACS = 40
NUM_PROBES = 1000
MACS_PER_PROBE = 25
TIMING_REPEATS = 3


def _synthetic_vocabularies() -> dict[str, list[str]]:
    rng = random.Random(0)
    shared = [f"shared-ap-{i}" for i in range(SHARED_MACS)]
    vocabularies = {}
    for b in range(NUM_BUILDINGS):
        own = [f"b{b:03d}-ap-{i}" for i in range(MACS_PER_BUILDING)]
        vocabularies[f"building-{b:03d}"] = own + rng.sample(shared, 10)
    return vocabularies


def _synthetic_probes(vocabularies: dict[str, list[str]]) -> list[SignalRecord]:
    rng = random.Random(1)
    building_ids = list(vocabularies)
    probes = []
    for i in range(NUM_PROBES):
        home = vocabularies[rng.choice(building_ids)]
        macs = rng.sample(home, MACS_PER_PROBE)
        probes.append(SignalRecord(
            record_id=f"probe-{i}",
            rss={mac: rng.uniform(-90.0, -35.0) for mac in macs}))
    return probes


def _best_of(callable_, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_routing_speedup_at_scale():
    """Inverted MAC index must beat the linear scan >= 3x at 60 buildings."""
    vocabularies = _synthetic_vocabularies()
    linear = LinearScanRouter()
    inverted = MacInvertedRouter()
    for building_id, vocabulary in vocabularies.items():
        linear.add_building(building_id, vocabulary)
        inverted.add_building(building_id, vocabulary)
    probes = _synthetic_probes(vocabularies)

    # Both implementations must agree before their speed is compared.
    assert inverted.route_batch(probes) == linear.route_batch(probes)

    linear_seconds = _best_of(lambda: linear.route_batch(probes))
    inverted_seconds = _best_of(lambda: inverted.route_batch(probes))
    speedup = linear_seconds / inverted_seconds

    rows = [
        {"router": "linear vocabulary scan",
         "seconds": round(linear_seconds, 4),
         "per_probe_us": round(linear_seconds / NUM_PROBES * 1e6, 1)},
        {"router": "inverted MAC index",
         "seconds": round(inverted_seconds, 4),
         "per_probe_us": round(inverted_seconds / NUM_PROBES * 1e6, 1)},
        {"router": "speedup", "seconds": round(speedup, 1), "per_probe_us": ""},
    ]
    save_table("serving_routing_speedup", rows,
               columns=["router", "seconds", "per_probe_us"],
               header=f"Routing {NUM_PROBES} probes across {NUM_BUILDINGS} "
                      "buildings")

    assert speedup >= 3.0, (
        f"inverted routing is only {speedup:.1f}x faster than the linear scan")


def test_serving_throughput():
    """End-to-end service throughput vs the sequential reference loop."""
    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
    registry = MultiBuildingFloorService(config)
    probes = []
    for b, seed in ((0, 61), (1, 62), (2, 63)):
        dataset = small_test_building(num_floors=3, records_per_floor=40,
                                      aps_per_floor=20, seed=seed,
                                      building_id=f"bench-{b}")
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        registry.fit_building(dataset.subset(split.train_records), split.labels)
        probes.extend(r.without_floor() for r in split.test_records[:12])

    service = FloorServingService(registry=registry)

    start = time.perf_counter()
    reference = [registry.predict(record) for record in probes]
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold = service.predict_batch(probes)
    cold_seconds = time.perf_counter() - start
    assert cold == reference  # serving must not change any prediction

    start = time.perf_counter()
    warm = service.predict_batch(probes)
    warm_seconds = time.perf_counter() - start
    assert warm == reference

    snapshot = service.telemetry_snapshot()
    latency = snapshot["latency"]["request_seconds"]
    rows = [
        {"path": "sequential registry.predict loop",
         "seconds": round(sequential_seconds, 3),
         "records_per_s": round(len(probes) / sequential_seconds, 1)},
        {"path": "FloorServingService cold cache",
         "seconds": round(cold_seconds, 3),
         "records_per_s": round(len(probes) / cold_seconds, 1)},
        {"path": "FloorServingService warm cache",
         "seconds": round(warm_seconds, 3),
         "records_per_s": round(len(probes) / warm_seconds, 1)},
        {"path": "cache hit rate",
         "seconds": snapshot["cache"]["hit_rate"], "records_per_s": ""},
        {"path": "request p50 / p95 (s)",
         "seconds": f"{latency['p50']:.4f} / {latency['p95']:.4f}",
         "records_per_s": ""},
    ]
    save_table("serving_throughput", rows,
               columns=["path", "seconds", "records_per_s"],
               header=f"Serving {len(probes)} probes across 3 buildings")

    assert warm_seconds < cold_seconds
    assert snapshot["cache"]["hit_rate"] >= 0.5
