"""Serving-subsystem benchmark: routing speedup, throughput, sharding.

Four measurements back the serving layer introduced for the production
deployment of the paper's online phase (Section V):

1. **Routing** — building attribution via the inverted MAC→building index
   (:class:`repro.serving.MacInvertedRouter`) against the reference linear
   vocabulary scan, at a registry size comparable to the paper's 204-building
   Microsoft corpus.  The inverted index must be at least 3x faster.

2. **Serving** — end-to-end throughput of :class:`FloorServingService`
   (router + cache + grouped batch dispatch) against the sequential
   ``MultiBuildingFloorService.predict`` loop, with cold and warm caches,
   while asserting the served predictions are identical to the reference.

3. **Concurrent predicts, 1 vs 4 shards** — four threads hammering
   ``predict`` on disjoint building sets against the one-lock service and
   the sharded service.  On a single-CPU container this is GIL-bound and
   the ratio is expected near 1.0; it is reported for honesty, not as the
   headline.

4. **Serving under retrain load, 1 vs 4 shards** — the stall scenario from
   the continuous-learning motivation: an ingest/serve loop processes
   steady traffic while periodic retrains fire.  The one-lock reference
   runs retrains synchronously *on the ingest thread* (every retrain stalls
   all traffic for the fit's duration); the sharded service runs them on a
   background :class:`RetrainExecutor` and hot-swaps on completion.  Both
   process traffic for the same fixed wall-clock budget; throughput is
   records served within the budget (deferred background retrains finish
   afterwards and are reported as join time + swap counts).

Run standalone (``--smoke`` for the CI-sized variant) or via pytest; both
print one machine-readable JSON summary line prefixed ``BENCH_JSON`` so CI
logs can be scraped for regressions.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import threading
import time

from repro import GraficsConfig, EmbeddingConfig, SignalRecord, StreamConfig
from repro.core.registry import MultiBuildingFloorService
from repro.data import make_experiment_split, small_test_building
from repro.serving import (
    FloorServingService,
    LinearScanRouter,
    MacInvertedRouter,
    ShardedServingService,
)
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)

from conftest import save_table

NUM_BUILDINGS = 60          # >= 50 per the acceptance criterion
MACS_PER_BUILDING = 150
SHARED_MACS = 40
NUM_PROBES = 1000
MACS_PER_PROBE = 25
TIMING_REPEATS = 3

FULL = {"buildings": 4, "records_per_floor": 25, "window": 256,
        "warm_records": 128, "budget_seconds": 3.0, "retrain_every": 16,
        "samples_per_edge": 40.0, "threads": 4, "thread_probes": 60}
SMOKE = {"buildings": 4, "records_per_floor": 20, "window": 128,
         "warm_records": 64, "budget_seconds": 1.2, "retrain_every": 12,
         "samples_per_edge": 24.0, "threads": 4, "thread_probes": 25}

#: Conservative CI floor for the retrain-load comparison; the measured
#: number on the reference container is recorded in CHANGES.md.
MIN_RETRAIN_LOAD_SPEEDUP = 1.1


def _synthetic_vocabularies() -> dict[str, list[str]]:
    rng = random.Random(0)
    shared = [f"shared-ap-{i}" for i in range(SHARED_MACS)]
    vocabularies = {}
    for b in range(NUM_BUILDINGS):
        own = [f"b{b:03d}-ap-{i}" for i in range(MACS_PER_BUILDING)]
        vocabularies[f"building-{b:03d}"] = own + rng.sample(shared, 10)
    return vocabularies


def _synthetic_probes(vocabularies: dict[str, list[str]]) -> list[SignalRecord]:
    rng = random.Random(1)
    building_ids = list(vocabularies)
    probes = []
    for i in range(NUM_PROBES):
        home = vocabularies[rng.choice(building_ids)]
        macs = rng.sample(home, MACS_PER_PROBE)
        probes.append(SignalRecord(
            record_id=f"probe-{i}",
            rss={mac: rng.uniform(-90.0, -35.0) for mac in macs}))
    return probes


def _best_of(callable_, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# ------------------------------------------------------------------- fixtures
def _trained_registry(sizes):
    """A registry of small trained buildings plus their held-out splits."""
    config = GraficsConfig(
        embedding=EmbeddingConfig(
            samples_per_edge=sizes["samples_per_edge"], seed=0),
        allow_unreachable_clusters=True)
    registry = MultiBuildingFloorService(config)
    splits = {}
    for b in range(sizes["buildings"]):
        building_id = f"bench-{b:02d}"
        dataset = small_test_building(
            num_floors=2, records_per_floor=sizes["records_per_floor"],
            aps_per_floor=10, seed=70 + b, building_id=building_id)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        registry.fit_building(dataset.subset(split.train_records),
                              split.labels)
        splits[building_id] = split
    return registry, splits


def _clone_registry(registry):
    clone = MultiBuildingFloorService(registry.config,
                                      min_overlap=registry.min_overlap)
    for building_id, vocabulary in registry.vocabularies.items():
        clone.install_model(building_id, registry.model_for(building_id),
                            vocabulary=vocabulary)
    return clone


def _interleaved_stream(splits, prefix, label_every=3, jitter=2.5):
    """Endless per-building round-robin stream of unique jittered records."""
    rng = random.Random(7)
    pools = {b: list(split.test_records) for b, split in splits.items()}
    for i in itertools.count():
        for building_id, pool in pools.items():
            base = pool[i % len(pool)]
            rss = {mac: value + rng.uniform(-jitter, jitter)
                   for mac, value in base.rss.items()}
            yield SignalRecord(
                record_id=f"{prefix}{building_id}-{i:06d}", rss=rss,
                floor=base.floor if i % label_every == 0 else None)


# ------------------------------------------------------------ measurements
def measure_concurrent_predicts(sizes, registry, splits,
                                num_shards: int) -> dict:
    """Wall time for N threads hammering ``predict`` on disjoint probes."""
    if num_shards == 1:
        service = FloorServingService(registry=_clone_registry(registry))
    else:
        service = ShardedServingService(registry=_clone_registry(registry),
                                        num_shards=num_shards)
    per_thread = []
    stream = _interleaved_stream(splits, f"conc{num_shards}-", label_every=1)
    for t in range(sizes["threads"]):
        per_thread.append([next(stream).without_floor()
                           for _ in range(sizes["thread_probes"])])

    errors = []

    def worker(probes):
        try:
            for probe in probes:
                service.predict(probe)
        except Exception as error:  # noqa: BLE001 — surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(probes,))
               for probes in per_thread]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise errors[0]
    total = sizes["threads"] * sizes["thread_probes"]
    return {"shards": num_shards, "records": total,
            "seconds": round(seconds, 4),
            "records_per_s": round(total / seconds, 1)}


def measure_retrain_load(sizes, registry, splits, num_shards: int,
                         workers: int) -> dict:
    """Records served in a fixed wall-clock budget while retrains fire.

    ``workers=0`` retrains synchronously on the ingest thread (the one-lock
    reference architecture); ``workers>=1`` submits retrains to the
    background executor so traffic keeps flowing and swaps land atomically
    a few records later.
    """
    if num_shards == 1:
        service = FloorServingService(registry=_clone_registry(registry))
    else:
        service = ShardedServingService(registry=_clone_registry(registry),
                                        num_shards=num_shards)
    pipeline = ContinuousLearningPipeline(service, StreamConfig(
        window=WindowConfig(max_records=sizes["window"]),
        drift=DriftConfig(vocabulary_jaccard_min=0.2),  # cadence drives this
        scheduler=SchedulerConfig(
            retrain_every_records=sizes["retrain_every"],
            min_window_records=sizes["warm_records"] // 2,
            min_labeled_records=2, warm_start=True),
        retrain_workers=workers))

    stream = _interleaved_stream(splits, f"load{num_shards}w{workers}-")
    for _ in range(sizes["warm_records"]):
        for _ in splits:
            pipeline.process(next(stream))

    processed = 0
    max_stall = 0.0
    deadline = time.perf_counter() + sizes["budget_seconds"]
    start = time.perf_counter()
    while True:
        before = time.perf_counter()
        if before >= deadline:
            break
        pipeline.process(next(stream))
        processed += 1
        max_stall = max(max_stall, time.perf_counter() - before)
    foreground = time.perf_counter() - start

    join_started = time.perf_counter()
    pipeline.close()
    join_seconds = time.perf_counter() - join_started
    stats = pipeline.scheduler.stats()
    return {
        "shards": num_shards, "workers": workers,
        "records": processed,
        "seconds": round(foreground, 4),
        "records_per_s": round(processed / foreground, 1),
        "max_process_stall_s": round(max_stall, 4),
        "join_seconds": round(join_seconds, 4),
        "swaps": stats["retrains_total"],
        "stale": stats["executor"]["stale_total"],
    }


# ------------------------------------------------------------------ benches
def run_routing() -> dict:
    """Inverted MAC index vs the linear scan at 60 buildings."""
    vocabularies = _synthetic_vocabularies()
    linear = LinearScanRouter()
    inverted = MacInvertedRouter()
    for building_id, vocabulary in vocabularies.items():
        linear.add_building(building_id, vocabulary)
        inverted.add_building(building_id, vocabulary)
    probes = _synthetic_probes(vocabularies)

    # Both implementations must agree before their speed is compared.
    assert inverted.route_batch(probes) == linear.route_batch(probes)

    linear_seconds = _best_of(lambda: linear.route_batch(probes))
    inverted_seconds = _best_of(lambda: inverted.route_batch(probes))
    speedup = linear_seconds / inverted_seconds

    rows = [
        {"router": "linear vocabulary scan",
         "seconds": round(linear_seconds, 4),
         "per_probe_us": round(linear_seconds / NUM_PROBES * 1e6, 1)},
        {"router": "inverted MAC index",
         "seconds": round(inverted_seconds, 4),
         "per_probe_us": round(inverted_seconds / NUM_PROBES * 1e6, 1)},
        {"router": "speedup", "seconds": round(speedup, 1), "per_probe_us": ""},
    ]
    save_table("serving_routing_speedup", rows,
               columns=["router", "seconds", "per_probe_us"],
               header=f"Routing {NUM_PROBES} probes across {NUM_BUILDINGS} "
                      "buildings")

    assert speedup >= 3.0, (
        f"inverted routing is only {speedup:.1f}x faster than the linear scan")
    return {"linear_us_per_probe": round(linear_seconds / NUM_PROBES * 1e6, 1),
            "inverted_us_per_probe": round(inverted_seconds / NUM_PROBES * 1e6,
                                           1),
            "speedup": round(speedup, 1)}


def run_serving() -> dict:
    """End-to-end service throughput vs the sequential reference loop."""
    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
    registry = MultiBuildingFloorService(config)
    probes = []
    for b, seed in ((0, 61), (1, 62), (2, 63)):
        dataset = small_test_building(num_floors=3, records_per_floor=40,
                                      aps_per_floor=20, seed=seed,
                                      building_id=f"bench-{b}")
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        registry.fit_building(dataset.subset(split.train_records), split.labels)
        probes.extend(r.without_floor() for r in split.test_records[:12])

    service = FloorServingService(registry=registry)

    start = time.perf_counter()
    reference = [registry.predict(record) for record in probes]
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold = service.predict_batch(probes)
    cold_seconds = time.perf_counter() - start
    assert cold == reference  # serving must not change any prediction

    start = time.perf_counter()
    warm = service.predict_batch(probes)
    warm_seconds = time.perf_counter() - start
    assert warm == reference

    snapshot = service.telemetry_snapshot()
    latency = snapshot["latency"]["request_seconds"]
    rows = [
        {"path": "sequential registry.predict loop",
         "seconds": round(sequential_seconds, 3),
         "records_per_s": round(len(probes) / sequential_seconds, 1)},
        {"path": "FloorServingService cold cache",
         "seconds": round(cold_seconds, 3),
         "records_per_s": round(len(probes) / cold_seconds, 1)},
        {"path": "FloorServingService warm cache",
         "seconds": round(warm_seconds, 3),
         "records_per_s": round(len(probes) / warm_seconds, 1)},
        {"path": "cache hit rate",
         "seconds": snapshot["cache"]["hit_rate"], "records_per_s": ""},
        {"path": "request p50 / p95 (s)",
         "seconds": f"{latency['p50']:.4f} / {latency['p95']:.4f}",
         "records_per_s": ""},
    ]
    save_table("serving_throughput", rows,
               columns=["path", "seconds", "records_per_s"],
               header=f"Serving {len(probes)} probes across 3 buildings")

    assert warm_seconds < cold_seconds
    assert snapshot["cache"]["hit_rate"] >= 0.5
    return {"sequential_rps": round(len(probes) / sequential_seconds, 1),
            "cold_rps": round(len(probes) / cold_seconds, 1),
            "warm_rps": round(len(probes) / warm_seconds, 1)}


def run_sharded(sizes, label) -> dict:
    """The 1-vs-4-shard comparison: concurrent predicts + retrain load."""
    registry, splits = _trained_registry(sizes)

    concurrent = [measure_concurrent_predicts(sizes, registry, splits, 1),
                  measure_concurrent_predicts(sizes, registry, splits, 4)]
    predict_ratio = (concurrent[1]["records_per_s"]
                     / concurrent[0]["records_per_s"])

    sync = measure_retrain_load(sizes, registry, splits, num_shards=1,
                                workers=0)
    sharded = measure_retrain_load(sizes, registry, splits, num_shards=4,
                                   workers=1)
    load_ratio = sharded["records_per_s"] / sync["records_per_s"]

    rows = [
        {"scenario": "concurrent predicts, 1 shard (one lock)",
         "records_per_s": concurrent[0]["records_per_s"], "detail": ""},
        {"scenario": "concurrent predicts, 4 shards",
         "records_per_s": concurrent[1]["records_per_s"],
         "detail": f"{predict_ratio:.2f}x"},
        {"scenario": "retrain load, 1 shard sync (stalls ingest)",
         "records_per_s": sync["records_per_s"],
         "detail": f"max stall {sync['max_process_stall_s']}s, "
                   f"{sync['swaps']} swaps"},
        {"scenario": "retrain load, 4 shards + background executor",
         "records_per_s": sharded["records_per_s"],
         "detail": f"{load_ratio:.2f}x, max stall "
                   f"{sharded['max_process_stall_s']}s, {sharded['swaps']} "
                   f"swaps, join {sharded['join_seconds']}s"},
    ]
    save_table("serving_sharded_throughput", rows,
               columns=["scenario", "records_per_s", "detail"],
               header=f"Sharded serving, {sizes['buildings']} buildings, "
                      f"budget {sizes['budget_seconds']}s ({label})")

    assert load_ratio >= MIN_RETRAIN_LOAD_SPEEDUP, (
        f"sharded+async serving is only {load_ratio:.2f}x the one-lock "
        "reference under retrain load")
    # The architecture must remove the inline-retrain stall from the
    # serving path, not just shift averages.
    assert (sharded["max_process_stall_s"]
            < sync["max_process_stall_s"]), "retrain stall did not shrink"
    return {"concurrent_predicts": concurrent,
            "predict_ratio": round(predict_ratio, 2),
            "retrain_load": {"sync_1shard": sync, "async_4shards": sharded},
            "retrain_load_ratio": round(load_ratio, 2)}


def run(sizes, label) -> dict:
    summary = {"benchmark": "serving_throughput", "mode": label,
               "routing": run_routing(), "serving": run_serving(),
               "sharded": run_sharded(sizes, label)}
    print("BENCH_JSON " + json.dumps(summary))
    return summary


# ------------------------------------------------------------ pytest entry
def test_routing_speedup_at_scale():
    """Inverted MAC index must beat the linear scan >= 3x at 60 buildings."""
    run_routing()


def test_serving_throughput():
    """End-to-end service throughput vs the sequential reference loop."""
    run_serving()


def test_sharded_throughput_under_load():
    """4 shards + background retrains must outserve the one-lock reference."""
    run_sharded(FULL, "full")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, not minutes)")
    args = parser.parse_args(argv)
    run(SMOKE if args.smoke else FULL, "smoke" if args.smoke else "full")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
