"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic stand-in corpora (see DESIGN.md for the substitution rationale),
prints the resulting table and writes it to ``benchmarks/results/`` so the
numbers recorded in EXPERIMENTS.md can be re-derived.

The corpora are deliberately scaled down (records per floor, number of
buildings) so the full benchmark suite runs on a laptop in tens of minutes;
the *shape* of every comparison — who wins, by roughly how much, where the
crossovers fall — is what is being reproduced, not absolute values.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.data import (
    dense_mall_floor,
    hong_kong_like_buildings,
    microsoft_like_campus,
    three_story_campus_building,
)
from repro.evaluation import format_table

warnings.filterwarnings("ignore")

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(name: str, rows, columns=None, header: str = "") -> str:
    """Render rows as a table, print it and persist it under results/."""
    table = format_table(rows, columns=columns)
    text = f"{header}\n{table}\n" if header else table + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return table


@pytest.fixture(scope="session")
def microsoft_corpus():
    """Scaled-down stand-in for the Microsoft (Hangzhou) corpus: 3 buildings."""
    return microsoft_like_campus(num_buildings=3, records_per_floor=60, seed=0)


@pytest.fixture(scope="session")
def hong_kong_corpus():
    """Scaled-down stand-in for the Hong Kong corpus (all five facilities)."""
    return hong_kong_like_buildings(records_per_floor=150, seed=1)


@pytest.fixture(scope="session")
def campus_building():
    """The three-storey campus building used by Fig. 6 / Fig. 8."""
    return three_story_campus_building(records_per_floor=100, seed=7)


@pytest.fixture(scope="session")
def mall_floor():
    """A dense single mall floor for the record statistics of Fig. 1."""
    return dense_mall_floor(num_records=1500, num_aps=150, seed=3)
