"""Classifier factories shared by the comparison benchmarks.

The hyperparameters mirror the paper's experiment settings (8-dimensional
embeddings everywhere) with training budgets trimmed so the full benchmark
suite finishes in reasonable wall-clock time on a CPU.
"""

from __future__ import annotations

from repro.baselines import (
    AutoencoderProxClassifier,
    GraficsClassifier,
    MatrixProxClassifier,
    MDSProxClassifier,
    SAEClassifier,
    ScalableDNNClassifier,
)
from repro.core import EmbeddingConfig, GraficsConfig
from repro.core.weighting import OffsetWeight, PowerWeight, WeightFunction

__all__ = [
    "grafics_factory",
    "grafics_line_factory",
    "paper_method_factories",
    "EMBEDDING_DIMENSION",
]

#: The embedding dimension used throughout the paper's experiments.
EMBEDDING_DIMENSION = 8


def grafics_factory(dimension: int = EMBEDDING_DIMENSION,
                    weight_function: WeightFunction | None = None,
                    samples_per_edge: float = 40.0, seed: int = 0):
    """Factory for the full GRAFICS system (E-LINE)."""

    def make():
        return GraficsClassifier(GraficsConfig(
            embedding_dimension=dimension,
            weight_function=weight_function or OffsetWeight(),
            embedding=EmbeddingConfig(dimension=dimension,
                                      samples_per_edge=samples_per_edge,
                                      seed=seed),
            allow_unreachable_clusters=True,
        ))

    return make


def grafics_line_factory(order: str = "line",
                         samples_per_edge: float = 100.0, seed: int = 0):
    """Factory for GRAFICS with a LINE variant instead of E-LINE (Fig. 13)."""

    def make():
        return GraficsClassifier(GraficsConfig(
            embedder=order,
            embedding=EmbeddingConfig(samples_per_edge=samples_per_edge,
                                      seed=seed),
            allow_unreachable_clusters=True,
        ), name=f"GRAFICS({order})")

    return make


def grafics_power_weight_factory(samples_per_edge: float = 40.0, seed: int = 0):
    """GRAFICS with the g(RSS)=10^(RSS/10) weight function (Fig. 16)."""

    def make():
        return GraficsClassifier(GraficsConfig(
            weight_function=PowerWeight(),
            embedding=EmbeddingConfig(samples_per_edge=samples_per_edge,
                                      seed=seed),
            allow_unreachable_clusters=True,
        ), name="GRAFICS(g=power)")

    return make


def paper_method_factories(fast: bool = True):
    """The five methods compared in the paper's Fig. 11 / Fig. 12."""
    dnn_epochs = dict(pretrain_epochs=8, train_epochs=30) if fast else {}
    return {
        "GRAFICS": grafics_factory(),
        "Scalable-DNN": lambda: ScalableDNNClassifier(seed=0, **dnn_epochs),
        "SAE": lambda: SAEClassifier(seed=0, pretrain_epochs=6,
                                     train_epochs=30),
        "MDS+Prox": lambda: MDSProxClassifier(seed=0),
        "Autoencoder+Prox": lambda: AutoencoderProxClassifier(epochs=10, seed=0),
    }


def matrix_factory():
    return MatrixProxClassifier()
